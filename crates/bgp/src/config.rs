//! Per-node BGP configuration.

use bgpsim_des::SimDuration;
use serde::{Deserialize, Serialize};

use crate::damping::DampingConfig;
use crate::dynmrai::DynamicMraiConfig;
use crate::mrai::MraiScope;
use crate::policy::PolicyMode;
use crate::queue::QueueDiscipline;

/// How a node picks its MRAI for eBGP sessions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MraiPolicy {
    /// A fixed interval (possibly different per node — the paper's
    /// degree-dependent scheme assigns constants by node degree).
    Constant(SimDuration),
    /// The paper's dynamic scheme (§4.3).
    Dynamic(DynamicMraiConfig),
}

impl Default for MraiPolicy {
    fn default() -> MraiPolicy {
        // RFC 1771 / deployed default.
        MraiPolicy::Constant(SimDuration::from_secs(30))
    }
}

/// Full configuration of one BGP router.
///
/// Build with [`NodeConfig::builder`]; defaults reproduce the paper's
/// SSFNet setup (§3.2): per-peer jittered MRAI, FIFO update processing with
/// U(1, 30) ms service times, no withdrawal rate limiting, zero iBGP MRAI.
///
/// ```
/// use bgpsim_bgp::NodeConfig;
/// use bgpsim_bgp::queue::QueueDiscipline;
/// use bgpsim_des::SimDuration;
///
/// let cfg = NodeConfig::builder()
///     .mrai_constant(SimDuration::from_millis(500))
///     .queue(QueueDiscipline::Batched)
///     .build();
/// assert_eq!(cfg.queue, QueueDiscipline::Batched);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// MRAI policy for eBGP sessions.
    pub mrai: MraiPolicy,
    /// MRAI scope (per peer vs per destination).
    pub mrai_scope: MraiScope,
    /// MRAI applied to iBGP sessions (typically zero).
    pub ibgp_mrai: SimDuration,
    /// Jitter timers per RFC 1771 (multiply by U(0.75, 1.0)).
    pub jitter: bool,
    /// Rate-limit withdrawals too (SSFNet's WRATE; off by default).
    pub withdrawal_rate_limiting: bool,
    /// Minimum per-update processing delay.
    pub proc_min: SimDuration,
    /// Maximum per-update processing delay.
    pub proc_max: SimDuration,
    /// Input-queue discipline.
    pub queue: QueueDiscipline,
    /// Cancel a running MRAI timer when the pending change *improves*
    /// (shortens) the route previously advertised to that peer, sending it
    /// immediately. This reproduces the first scheme of Deshpande & Sikdar
    /// (GLOBECOM 2004), which the paper discusses as related work: it cuts
    /// the convergence delay at the cost of considerably more update
    /// messages. Off by default.
    pub expedite_improvements: bool,
    /// Gao–Rexford commercial policies (off by default, as in the paper's
    /// §3.2 "no policy based restrictions").
    pub policy: PolicyMode,
    /// RFC 2439 route-flap damping on eBGP sessions (off by default; the
    /// paper does not damp).
    pub damping: Option<DampingConfig>,
    /// Whether this router is an iBGP route reflector (RFC 4456): unlike a
    /// regular iBGP speaker it re-advertises iBGP-learned routes to its
    /// other iBGP peers (its clients). With a full mesh this stays `false`.
    pub route_reflector: bool,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            mrai: MraiPolicy::default(),
            mrai_scope: MraiScope::PerPeer,
            ibgp_mrai: SimDuration::ZERO,
            jitter: true,
            withdrawal_rate_limiting: false,
            proc_min: SimDuration::from_millis(1),
            proc_max: SimDuration::from_millis(30),
            queue: QueueDiscipline::Fifo,
            expedite_improvements: false,
            policy: PolicyMode::None,
            damping: None,
            route_reflector: false,
        }
    }
}

impl NodeConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder {
            cfg: NodeConfig::default(),
        }
    }

    /// Mean of the processing-delay distribution (15.5 ms for the paper's
    /// U(1, 30) ms) — the factor converting queue length to unfinished work.
    pub fn mean_processing(&self) -> SimDuration {
        (self.proc_min + self.proc_max) / 2
    }

    /// Validates invariants the node relies on.
    ///
    /// # Panics
    ///
    /// Panics if `proc_min > proc_max`.
    pub fn validate(&self) {
        assert!(
            self.proc_min <= self.proc_max,
            "processing-delay bounds out of order: {} > {}",
            self.proc_min,
            self.proc_max
        );
        if let Some(d) = &self.damping {
            d.validate();
        }
    }
}

/// Builder for [`NodeConfig`].
#[derive(Clone, Debug, Default)]
pub struct NodeConfigBuilder {
    cfg: NodeConfig,
}

impl NodeConfigBuilder {
    /// Uses a constant MRAI for eBGP sessions.
    pub fn mrai_constant(mut self, mrai: SimDuration) -> NodeConfigBuilder {
        self.cfg.mrai = MraiPolicy::Constant(mrai);
        self
    }

    /// Uses the dynamic MRAI scheme.
    pub fn mrai_dynamic(mut self, dynamic: DynamicMraiConfig) -> NodeConfigBuilder {
        self.cfg.mrai = MraiPolicy::Dynamic(dynamic);
        self
    }

    /// Sets the MRAI scope.
    pub fn mrai_scope(mut self, scope: MraiScope) -> NodeConfigBuilder {
        self.cfg.mrai_scope = scope;
        self
    }

    /// Sets the iBGP-session MRAI.
    pub fn ibgp_mrai(mut self, mrai: SimDuration) -> NodeConfigBuilder {
        self.cfg.ibgp_mrai = mrai;
        self
    }

    /// Enables or disables RFC 1771 timer jitter.
    pub fn jitter(mut self, on: bool) -> NodeConfigBuilder {
        self.cfg.jitter = on;
        self
    }

    /// Enables or disables withdrawal rate limiting (WRATE).
    pub fn withdrawal_rate_limiting(mut self, on: bool) -> NodeConfigBuilder {
        self.cfg.withdrawal_rate_limiting = on;
        self
    }

    /// Sets the uniform processing-delay bounds.
    pub fn processing_delay(mut self, min: SimDuration, max: SimDuration) -> NodeConfigBuilder {
        self.cfg.proc_min = min;
        self.cfg.proc_max = max;
        self
    }

    /// Sets the input-queue discipline.
    pub fn queue(mut self, discipline: QueueDiscipline) -> NodeConfigBuilder {
        self.cfg.queue = discipline;
        self
    }

    /// Enables or disables expedited improvements (Deshpande & Sikdar's
    /// timer-cancelling scheme).
    pub fn expedite_improvements(mut self, on: bool) -> NodeConfigBuilder {
        self.cfg.expedite_improvements = on;
        self
    }

    /// Sets the routing-policy mode.
    pub fn policy(mut self, mode: PolicyMode) -> NodeConfigBuilder {
        self.cfg.policy = mode;
        self
    }

    /// Enables RFC 2439 route-flap damping with the given parameters.
    pub fn damping(mut self, cfg: DampingConfig) -> NodeConfigBuilder {
        self.cfg.damping = Some(cfg);
        self
    }

    /// Marks this router as an iBGP route reflector.
    pub fn route_reflector(mut self, on: bool) -> NodeConfigBuilder {
        self.cfg.route_reflector = on;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`NodeConfig::validate`]).
    pub fn build(self) -> NodeConfig {
        self.cfg.validate();
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = NodeConfig::default();
        assert_eq!(cfg.mrai, MraiPolicy::Constant(SimDuration::from_secs(30)));
        assert!(cfg.jitter);
        assert!(!cfg.withdrawal_rate_limiting);
        assert_eq!(cfg.proc_min, SimDuration::from_millis(1));
        assert_eq!(cfg.proc_max, SimDuration::from_millis(30));
        assert_eq!(cfg.queue, QueueDiscipline::Fifo);
        assert_eq!(cfg.ibgp_mrai, SimDuration::ZERO);
        assert!(!cfg.expedite_improvements);
        assert_eq!(cfg.policy, PolicyMode::None);
        assert!(cfg.damping.is_none());
        assert!(!cfg.route_reflector);
    }

    #[test]
    fn mean_processing_is_midpoint() {
        let cfg = NodeConfig::default();
        assert_eq!(cfg.mean_processing(), SimDuration::from_micros(15_500));
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(1250))
            .ibgp_mrai(SimDuration::from_millis(100))
            .jitter(false)
            .withdrawal_rate_limiting(true)
            .processing_delay(SimDuration::from_millis(2), SimDuration::from_millis(5))
            .queue(QueueDiscipline::TcpBatch { buffer: 16 })
            .build();
        assert_eq!(
            cfg.mrai,
            MraiPolicy::Constant(SimDuration::from_millis(1250))
        );
        assert_eq!(cfg.ibgp_mrai, SimDuration::from_millis(100));
        assert!(!cfg.jitter);
        assert!(cfg.withdrawal_rate_limiting);
        assert_eq!(cfg.mean_processing(), SimDuration::from_micros(3_500));
        assert_eq!(cfg.queue, QueueDiscipline::TcpBatch { buffer: 16 });
    }

    #[test]
    #[should_panic(expected = "bounds out of order")]
    fn builder_rejects_bad_processing_bounds() {
        let _ = NodeConfig::builder()
            .processing_delay(SimDuration::from_millis(30), SimDuration::from_millis(1))
            .build();
    }
}
