//! Node-level trace events.
//!
//! When tracing is enabled ([`BgpNode::set_tracing`]), every handler
//! records the protocol-internal happenings the end-of-run counters
//! cannot show — the dynamics the paper's explanations rest on: stale
//! updates deleted before processing (§4.4), MRAI level transitions with
//! the detector reading that caused them (§4.3), queue depth over time
//! (the unfinished-work signal), and per-destination best-path churn.
//!
//! Events are buffered inside the node in handler-execution order and
//! drained by the simulation driver ([`BgpNode::take_trace`]), which
//! stamps them with the global `(time, node, seq)` coordinates. The node
//! itself never sees a clock beyond the handler's `now`, keeping the
//! sans-io contract intact.
//!
//! Everything here is observation only: recording an event never touches
//! the RNG, the RIBs, or any timer, so a traced run is bit-identical to
//! an untraced one.
//!
//! [`BgpNode::set_tracing`]: crate::BgpNode::set_tracing
//! [`BgpNode::take_trace`]: crate::BgpNode::take_trace

use bgpsim_des::SimDuration;
use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

use crate::msg::Prefix;

/// One observation made inside a node handler.
///
/// Serialized (externally tagged) into the JSONL trace stream; the schema
/// is documented in DESIGN.md §11.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NodeEvent {
    /// An UPDATE left this node towards `to`.
    Sent {
        /// Receiving peer.
        to: RouterId,
        /// Destination the update concerns.
        prefix: Prefix,
        /// `true` for an announcement, `false` for a withdrawal.
        advertise: bool,
    },
    /// An UPDATE from `from` arrived (and was queued, unless the session
    /// was already torn down).
    Received {
        /// Sending peer.
        from: RouterId,
        /// Destination the update concerns.
        prefix: Prefix,
        /// `true` for an announcement, `false` for a withdrawal.
        advertise: bool,
    },
    /// One queued work item finished processing (RIB-In applied).
    Processed {
        /// The peer whose RIB-In entry the item touched.
        peer: RouterId,
        /// Destination the item concerns.
        prefix: Prefix,
    },
    /// The queue discipline deleted `count` stale updates unprocessed
    /// (batching, §4.4).
    StaleDeleted {
        /// Updates discarded by this queue operation.
        count: u64,
    },
    /// The decision process ran for `prefix`.
    Decision {
        /// Destination re-decided.
        prefix: Prefix,
        /// `true` when the incremental fast path could not resolve and a
        /// full candidate rescan ran.
        full_rescan: bool,
    },
    /// The decision process changed the installed best route.
    BestChanged {
        /// Destination whose best route changed.
        prefix: Prefix,
        /// AS-path length of the new best (`None` = route removed).
        path_len: Option<u32>,
    },
    /// An MRAI timer towards `peer` started.
    MraiStarted {
        /// The peer whose timer started.
        peer: RouterId,
        /// `None` in per-peer scope; the destination in per-destination
        /// scope.
        prefix: Option<Prefix>,
        /// The (already jittered) interval.
        delay: SimDuration,
    },
    /// A live MRAI timer towards `peer` expired (stale generations are
    /// not reported).
    MraiExpired {
        /// The peer whose timer expired.
        peer: RouterId,
        /// Timer scope, as in [`NodeEvent::MraiStarted`].
        prefix: Option<Prefix>,
    },
    /// The dynamic-MRAI controller moved a level (§4.3).
    MraiLevel {
        /// Level index before the change.
        from: usize,
        /// Level index after the change.
        to: usize,
        /// The detector reading that caused the move: unfinished work in
        /// seconds, busy fraction, or update count, depending on the
        /// configured [`Detector`](crate::dynmrai::Detector).
        reading: f64,
    },
    /// Input-queue depth after a queue-affecting handler ran.
    QueueDepth {
        /// Updates waiting (not yet in service).
        queued: u32,
        /// Updates in the batch currently in service.
        in_service: u32,
    },
}
