//! Commercial routing policies (Gao–Rexford).
//!
//! The paper runs BGP with "no policy based restrictions on route
//! advertisements" (§3.2), but its related work (Labovitz et al. \[6\], *The
//! Impact of Internet Policy and Topology on Delayed Routing Convergence*)
//! studies how the customer/peer/provider structure of the Internet changes
//! convergence: valley-free export rules prune the set of alternate paths
//! BGP can hunt through. This module provides that machinery so the
//! workspace can reproduce the comparison as an extension experiment:
//!
//! * [`Relationship`] — what a *neighbor* is to us.
//! * Route *ranks* — customer-learned (or local) routes rank 0, peer routes
//!   1, provider routes 2; the decision process prefers lower ranks before
//!   path length (the BGP `LOCAL_PREF` idiom).
//! * [`may_export`] — Gao–Rexford export: customer/local routes go to
//!   everyone; peer- and provider-learned routes go only to customers.
//!
//! With these preferences and filters, BGP is provably convergent
//! (Gao & Rexford 2001) — the simulation's quiescence is guaranteed, not
//! accidental.

use serde::{Deserialize, Serialize};

/// Whether policy routing is enabled on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PolicyMode {
    /// No policies: shortest path only (the paper's configuration).
    #[default]
    None,
    /// Gao–Rexford preferences and valley-free export rules.
    GaoRexford,
}

/// The business relationship of a *neighbor* relative to this router's AS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor is our customer (they pay us; routes via them are
    /// preferred and freely exportable).
    Customer,
    /// Settlement-free peer.
    Peer,
    /// The neighbor is our provider (we pay them).
    Provider,
}

impl Relationship {
    /// The rank a route learned from this neighbor gets: lower is
    /// preferred (customer 0 < peer 1 < provider 2).
    pub fn rank(self) -> u8 {
        match self {
            Relationship::Customer => RANK_CUSTOMER,
            Relationship::Peer => RANK_PEER,
            Relationship::Provider => RANK_PROVIDER,
        }
    }

    /// How the neighbor sees *us* (customer ↔ provider, peer ↔ peer).
    pub fn inverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Peer => Relationship::Peer,
            Relationship::Provider => Relationship::Customer,
        }
    }
}

/// Rank of customer-learned and locally originated routes.
pub const RANK_CUSTOMER: u8 = 0;
/// Rank of peer-learned routes.
pub const RANK_PEER: u8 = 1;
/// Rank of provider-learned routes.
pub const RANK_PROVIDER: u8 = 2;

/// Gao–Rexford export rule: may a route of rank `route_rank` be advertised
/// to a neighbor that is `to` us?
///
/// Customer-learned and local routes (`rank 0`) are exportable to everyone;
/// peer- and provider-learned routes only to customers — this is what makes
/// every propagated path valley-free.
///
/// ```
/// use bgpsim_bgp::policy::{may_export, Relationship, RANK_CUSTOMER, RANK_PEER};
///
/// assert!(may_export(RANK_CUSTOMER, Relationship::Provider));
/// assert!(may_export(RANK_PEER, Relationship::Customer));
/// assert!(!may_export(RANK_PEER, Relationship::Peer));
/// assert!(!may_export(RANK_PEER, Relationship::Provider));
/// ```
pub fn may_export(route_rank: u8, to: Relationship) -> bool {
    route_rank == RANK_CUSTOMER || to == Relationship::Customer
}

/// Derives the relationship of `neighbor_degree` towards a node of
/// `own_degree` from the degree heuristic the literature uses on inferred
/// AS graphs: the bigger AS is the provider; equals are peers.
pub fn relationship_by_degree(own_degree: usize, neighbor_degree: usize) -> Relationship {
    use std::cmp::Ordering::*;
    match neighbor_degree.cmp(&own_degree) {
        Greater => Relationship::Provider,
        Less => Relationship::Customer,
        Equal => Relationship::Peer,
    }
}

/// Relationship inference for whole networks: bigger degree is the
/// provider; *top-tier* ties (degree ≥ `hub_degree`) are settlement-free
/// peers; lower ties are oriented by id (lower id provides) so the
/// hierarchy stays connected. Pure degree-tie peering (the naive rule)
/// fragments synthetic topologies into tiny valley-free islands — real AS
/// graphs are mostly customer-provider edges with peering confined to the
/// top tier.
///
/// The function is antisymmetric: swapping the two nodes yields the
/// [`inverse`](Relationship::inverse) relationship, so both session ends
/// agree.
pub fn infer_relationship(
    own: (usize, u32),
    neighbor: (usize, u32),
    hub_degree: usize,
) -> Relationship {
    use std::cmp::Ordering::*;
    let ((own_deg, own_id), (nb_deg, nb_id)) = (own, neighbor);
    match nb_deg.cmp(&own_deg) {
        Greater => Relationship::Provider,
        Less => Relationship::Customer,
        Equal if own_deg >= hub_degree => Relationship::Peer,
        Equal => {
            if nb_id < own_id {
                Relationship::Provider
            } else {
                Relationship::Customer
            }
        }
    }
}

/// Relationship from hierarchy *tiers* (distance from the top tier):
/// the lower-tier (closer-to-top) neighbor is the provider; equal tiers
/// peer. Used with tiers computed as BFS depth from the maximum-degree
/// ASes, which guarantees every non-top AS has at least one provider — no
/// "local peak" can strand its customer cone.
pub fn relationship_by_tier(own_tier: usize, neighbor_tier: usize) -> Relationship {
    use std::cmp::Ordering::*;
    match neighbor_tier.cmp(&own_tier) {
        Less => Relationship::Provider,
        Greater => Relationship::Customer,
        Equal => Relationship::Peer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_order_customer_first() {
        assert!(Relationship::Customer.rank() < Relationship::Peer.rank());
        assert!(Relationship::Peer.rank() < Relationship::Provider.rank());
    }

    #[test]
    fn inverse_is_involutive() {
        for rel in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert_eq!(rel.inverse().inverse(), rel);
        }
        assert_eq!(Relationship::Customer.inverse(), Relationship::Provider);
        assert_eq!(Relationship::Peer.inverse(), Relationship::Peer);
    }

    #[test]
    fn export_matrix_is_valley_free() {
        // Customer/local routes: to everyone.
        for to in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert!(may_export(RANK_CUSTOMER, to));
        }
        // Peer & provider routes: customers only.
        for rank in [RANK_PEER, RANK_PROVIDER] {
            assert!(may_export(rank, Relationship::Customer));
            assert!(!may_export(rank, Relationship::Peer));
            assert!(!may_export(rank, Relationship::Provider));
        }
    }

    #[test]
    fn degree_heuristic() {
        assert_eq!(relationship_by_degree(2, 10), Relationship::Provider);
        assert_eq!(relationship_by_degree(10, 2), Relationship::Customer);
        assert_eq!(relationship_by_degree(5, 5), Relationship::Peer);
    }

    #[test]
    fn default_mode_is_none() {
        assert_eq!(PolicyMode::default(), PolicyMode::None);
    }

    #[test]
    fn inference_orients_by_degree_then_id() {
        // Degree decides first.
        assert_eq!(
            infer_relationship((2, 0), (10, 1), 10),
            Relationship::Provider
        );
        assert_eq!(
            infer_relationship((10, 1), (2, 0), 10),
            Relationship::Customer
        );
        // Hub-tier ties peer.
        assert_eq!(infer_relationship((10, 0), (10, 1), 10), Relationship::Peer);
        // Lower-tier ties orient by id: lower id provides.
        assert_eq!(
            infer_relationship((3, 5), (3, 2), 10),
            Relationship::Provider
        );
        assert_eq!(
            infer_relationship((3, 2), (3, 5), 10),
            Relationship::Customer
        );
    }

    #[test]
    fn tier_relationships() {
        assert_eq!(relationship_by_tier(2, 1), Relationship::Provider);
        assert_eq!(relationship_by_tier(1, 2), Relationship::Customer);
        assert_eq!(relationship_by_tier(1, 1), Relationship::Peer);
        // Antisymmetry.
        assert_eq!(
            relationship_by_tier(3, 0),
            relationship_by_tier(0, 3).inverse()
        );
    }

    #[test]
    fn inference_is_antisymmetric() {
        for (a, b, hub) in [
            ((1usize, 0u32), (5usize, 9u32), 5usize),
            ((4, 3), (4, 7), 9),
            ((9, 1), (9, 2), 9),
        ] {
            assert_eq!(
                infer_relationship(a, b, hub),
                infer_relationship(b, a, hub).inverse(),
                "ends disagree for {a:?} vs {b:?}"
            );
        }
    }
}
