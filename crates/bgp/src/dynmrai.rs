//! Dynamic MRAI selection (paper §4.3).
//!
//! The node switches its MRAI between a small set of *levels* (the paper
//! uses 0.5 / 1.25 / 2.25 s for 120-node networks) based on an overload
//! signal. The paper's primary detector is **unfinished work**: input-queue
//! length × mean per-update processing delay; above `upTh` the MRAI steps
//! up a level, below `downTh` it steps down. The paper also reports trying
//! a processor-**utilization** detector ("promising results") and a raw
//! received-**update-count** detector ("not very successful — difficult to
//! set the thresholds"); both are provided for the ablation benches.
//!
//! Changes take effect only when an MRAI timer is next started — running
//! timers are never modified (paper: "we do not modify the values of the
//! running timers ... the change takes effect only when the timers are
//! restarted").

use bgpsim_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The overload signal driving level changes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Detector {
    /// Unfinished work = (queued + in-service updates) × `mean_processing`.
    /// The paper's scheme, with `upTh` = 0.65 s and `downTh` = 0.05 s in
    /// Fig 7.
    UnfinishedWork {
        /// Step the level up when unfinished work exceeds this.
        up: SimDuration,
        /// Step the level down when unfinished work is below this.
        down: SimDuration,
        /// Mean per-update processing delay (15.5 ms for U(1, 30) ms).
        mean_processing: SimDuration,
    },
    /// Fraction of wall-clock the processor was busy since the previous
    /// evaluation.
    Utilization {
        /// Step up above this busy fraction.
        up: f64,
        /// Step down below this busy fraction.
        down: f64,
    },
    /// Raw number of updates received since the previous evaluation.
    UpdateCount {
        /// Step up above this count.
        up: u64,
        /// Step down below this count.
        down: u64,
    },
}

/// Configuration of the dynamic MRAI scheme.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicMraiConfig {
    /// MRAI levels in increasing order (paper: 0.5, 1.25, 2.25 s).
    pub levels: Vec<SimDuration>,
    /// The overload detector and its thresholds.
    pub detector: Detector,
}

impl DynamicMraiConfig {
    /// The paper's Fig 7 configuration: levels {0.5, 1.25, 2.25} s,
    /// unfinished-work detector with `upTh` = 0.65 s, `downTh` = 0.05 s,
    /// mean processing delay 15.5 ms.
    pub fn paper_default() -> DynamicMraiConfig {
        DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(1250),
                SimDuration::from_millis(2250),
            ],
            detector: Detector::UnfinishedWork {
                up: SimDuration::from_millis(650),
                down: SimDuration::from_millis(50),
                mean_processing: SimDuration::from_micros(15_500),
            },
        }
    }

    /// Same levels as [`paper_default`](Self::paper_default) but custom
    /// unfinished-work thresholds (the Fig 8/9 sweeps).
    pub fn with_thresholds(up: SimDuration, down: SimDuration) -> DynamicMraiConfig {
        let mut cfg = DynamicMraiConfig::paper_default();
        cfg.detector = Detector::UnfinishedWork {
            up,
            down,
            mean_processing: SimDuration::from_micros(15_500),
        };
        cfg
    }
}

/// A level change made by [`DynMraiController::evaluate`], reported so
/// tracing can tie the transition to the evidence that caused it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelShift {
    /// Level index before the change.
    pub from: usize,
    /// Level index after the change.
    pub to: usize,
    /// The detector reading behind the move: unfinished work in seconds,
    /// busy fraction, or raw update count, per the configured
    /// [`Detector`].
    pub reading: f64,
}

/// Runtime state of the dynamic MRAI controller for one node.
///
/// ```
/// use bgpsim_bgp::dynmrai::{DynamicMraiConfig, DynMraiController};
/// use bgpsim_des::{SimDuration, SimTime};
///
/// let mut ctrl = DynMraiController::new(DynamicMraiConfig::paper_default());
/// assert_eq!(ctrl.current_mrai(), SimDuration::from_millis(500));
/// // 100 queued updates × 15.5 ms = 1.55 s of unfinished work > 0.65 s.
/// ctrl.evaluate(SimTime::from_secs(1), 100);
/// assert_eq!(ctrl.current_mrai(), SimDuration::from_millis(1250));
/// ```
#[derive(Clone, Debug)]
pub struct DynMraiController {
    cfg: DynamicMraiConfig,
    level: usize,
    level_changes: u64,
    last_change: Option<SimTime>,
    window_start: SimTime,
    busy_in_window: SimDuration,
    updates_in_window: u64,
}

impl DynMraiController {
    /// Creates a controller starting at the lowest level (the paper starts
    /// every node at 0.5 s because small failures are the common case).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.levels` is empty or not strictly increasing.
    pub fn new(cfg: DynamicMraiConfig) -> DynMraiController {
        assert!(
            !cfg.levels.is_empty(),
            "dynamic MRAI needs at least one level"
        );
        assert!(
            cfg.levels.windows(2).all(|w| w[0] < w[1]),
            "dynamic MRAI levels must be strictly increasing"
        );
        DynMraiController {
            cfg,
            level: 0,
            level_changes: 0,
            last_change: None,
            window_start: SimTime::ZERO,
            busy_in_window: SimDuration::ZERO,
            updates_in_window: 0,
        }
    }

    /// The MRAI to use for the next timer start.
    pub fn current_mrai(&self) -> SimDuration {
        self.cfg.levels[self.level]
    }

    /// Current level index.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Total level changes so far.
    pub fn level_changes(&self) -> u64 {
        self.level_changes
    }

    /// Records processor busy time (drives the utilization detector).
    pub fn note_busy(&mut self, dur: SimDuration) {
        self.busy_in_window += dur;
    }

    /// Records a received update (drives the update-count detector).
    pub fn note_update_received(&mut self) {
        self.updates_in_window += 1;
    }

    /// Evaluates the overload signal and moves at most one level;
    /// returns the change it made, if any.
    ///
    /// Called when an MRAI timer is (re)started, per the paper. At most one
    /// level change happens per distinct instant, so several peers
    /// restarting timers simultaneously cannot ratchet the level multiple
    /// steps on the same evidence. Running timers are never touched — the
    /// new level only applies from the next timer start.
    pub fn evaluate(&mut self, now: SimTime, pending_updates: usize) -> Option<LevelShift> {
        if self.last_change == Some(now) {
            return None;
        }
        let (direction, reading) = match self.cfg.detector {
            Detector::UnfinishedWork {
                up,
                down,
                mean_processing,
            } => {
                let work = mean_processing * pending_updates as u64;
                (signal_direction(work, up, down), work.as_secs_f64())
            }
            Detector::Utilization { up, down } => {
                let elapsed = now.saturating_since(self.window_start);
                if elapsed.is_zero() {
                    return None;
                }
                let util = self.busy_in_window.as_secs_f64() / elapsed.as_secs_f64();
                self.window_start = now;
                self.busy_in_window = SimDuration::ZERO;
                let dir = if util > up {
                    1
                } else if util < down {
                    -1
                } else {
                    0
                };
                (dir, util)
            }
            Detector::UpdateCount { up, down } => {
                let count = self.updates_in_window;
                self.updates_in_window = 0;
                let dir = if count > up {
                    1
                } else if count < down {
                    -1
                } else {
                    0
                };
                (dir, count as f64)
            }
        };
        let new_level = match direction {
            1 => (self.level + 1).min(self.cfg.levels.len() - 1),
            -1 => self.level.saturating_sub(1),
            _ => self.level,
        };
        if new_level == self.level {
            return None;
        }
        let shift = LevelShift {
            from: self.level,
            to: new_level,
            reading,
        };
        self.level = new_level;
        self.level_changes += 1;
        self.last_change = Some(now);
        Some(shift)
    }
}

fn signal_direction(value: SimDuration, up: SimDuration, down: SimDuration) -> i32 {
    if value > up {
        1
    } else if value < down {
        -1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> DynMraiController {
        DynMraiController::new(DynamicMraiConfig::paper_default())
    }

    #[test]
    fn starts_at_lowest_level() {
        let c = ctrl();
        assert_eq!(c.level(), 0);
        assert_eq!(c.current_mrai(), SimDuration::from_millis(500));
    }

    #[test]
    fn overload_steps_up_and_saturates() {
        let mut c = ctrl();
        // 100 pending × 15.5 ms = 1.55 s > 0.65 s.
        c.evaluate(SimTime::from_secs(1), 100);
        assert_eq!(c.level(), 1);
        c.evaluate(SimTime::from_secs(2), 100);
        assert_eq!(c.level(), 2);
        c.evaluate(SimTime::from_secs(3), 100);
        assert_eq!(c.level(), 2, "saturates at the top level");
        assert_eq!(c.level_changes(), 2);
    }

    #[test]
    fn idle_steps_down_and_saturates() {
        let mut c = ctrl();
        c.evaluate(SimTime::from_secs(1), 100);
        assert_eq!(c.level(), 1);
        // 1 pending × 15.5 ms = 15.5 ms < 50 ms ⇒ down.
        c.evaluate(SimTime::from_secs(2), 1);
        assert_eq!(c.level(), 0);
        c.evaluate(SimTime::from_secs(3), 0);
        assert_eq!(c.level(), 0, "saturates at the bottom");
    }

    #[test]
    fn middle_band_holds_level() {
        let mut c = ctrl();
        c.evaluate(SimTime::from_secs(1), 100);
        assert_eq!(c.level(), 1);
        // 20 pending × 15.5 ms = 310 ms: between 50 ms and 650 ms ⇒ hold.
        c.evaluate(SimTime::from_secs(2), 20);
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn at_most_one_change_per_instant() {
        let mut c = ctrl();
        let t = SimTime::from_secs(5);
        c.evaluate(t, 1000);
        c.evaluate(t, 1000);
        c.evaluate(t, 1000);
        assert_eq!(c.level(), 1, "same-instant evaluations must not ratchet");
    }

    #[test]
    fn utilization_detector() {
        let mut c = DynMraiController::new(DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(2250),
            ],
            detector: Detector::Utilization { up: 0.8, down: 0.2 },
        });
        c.note_busy(SimDuration::from_millis(950));
        c.evaluate(SimTime::from_secs(1), 0); // util 0.95 > 0.8
        assert_eq!(c.level(), 1);
        // New window, nearly idle.
        c.note_busy(SimDuration::from_millis(10));
        c.evaluate(SimTime::from_secs(2), 0); // util 0.01 < 0.2
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn update_count_detector_resets_window() {
        let mut c = DynMraiController::new(DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(2250),
            ],
            detector: Detector::UpdateCount { up: 50, down: 5 },
        });
        for _ in 0..100 {
            c.note_update_received();
        }
        c.evaluate(SimTime::from_secs(1), 0);
        assert_eq!(c.level(), 1);
        // Window reset: no new updates ⇒ below `down`.
        c.evaluate(SimTime::from_secs(2), 0);
        assert_eq!(c.level(), 0);
    }

    /// Two levels with round-number unfinished-work thresholds so boundary
    /// readings land exactly on them: 10 ms mean processing, upTh 100 ms,
    /// downTh 50 ms.
    fn uw_ctrl() -> DynMraiController {
        DynMraiController::new(DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(2250),
            ],
            detector: Detector::UnfinishedWork {
                up: SimDuration::from_millis(100),
                down: SimDuration::from_millis(50),
                mean_processing: SimDuration::from_millis(10),
            },
        })
    }

    fn util_ctrl() -> DynMraiController {
        DynMraiController::new(DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(2250),
            ],
            detector: Detector::Utilization { up: 0.8, down: 0.2 },
        })
    }

    #[test]
    fn unfinished_work_thresholds_are_strict() {
        let mut c = uw_ctrl();
        // Exactly AT upTh (10 × 10 ms = 100 ms) must hold: the step
        // condition is work > upTh, not >=.
        assert_eq!(c.evaluate(SimTime::from_secs(1), 10), None);
        assert_eq!(c.level(), 0);
        // One more pending update crosses it; the shift reports the
        // evidence (work in seconds) that caused it.
        let shift = c.evaluate(SimTime::from_secs(2), 11).expect("steps up");
        assert_eq!((shift.from, shift.to), (0, 1));
        assert!((shift.reading - 0.11).abs() < 1e-12);
        // Exactly AT downTh (5 × 10 ms = 50 ms) must hold too.
        assert_eq!(c.evaluate(SimTime::from_secs(3), 5), None);
        assert_eq!(c.level(), 1);
        let shift = c.evaluate(SimTime::from_secs(4), 4).expect("steps down");
        assert_eq!((shift.from, shift.to), (1, 0));
        assert!((shift.reading - 0.04).abs() < 1e-12);
        assert_eq!(c.level_changes(), 2);
    }

    #[test]
    fn utilization_thresholds_are_strict() {
        let mut c = util_ctrl();
        // Busy exactly 0.8 of the 1-second window: hold.
        c.note_busy(SimDuration::from_millis(800));
        assert_eq!(c.evaluate(SimTime::from_secs(1), 0), None);
        assert_eq!(c.level(), 0);
        // The hold still reset the window: 0.81 busy over the next
        // second steps up on its own, not on accumulated history.
        c.note_busy(SimDuration::from_millis(810));
        let shift = c.evaluate(SimTime::from_secs(2), 0).expect("steps up");
        assert_eq!((shift.from, shift.to), (0, 1));
        assert!((shift.reading - 0.81).abs() < 1e-9);
        // Busy exactly 0.2 of the window: hold at the upper level.
        c.note_busy(SimDuration::from_millis(200));
        assert_eq!(c.evaluate(SimTime::from_secs(3), 0), None);
        assert_eq!(c.level(), 1);
        c.note_busy(SimDuration::from_millis(199));
        let shift = c.evaluate(SimTime::from_secs(4), 0).expect("steps down");
        assert_eq!((shift.from, shift.to), (1, 0));
    }

    #[test]
    fn utilization_zero_window_defers_without_consuming_evidence() {
        let mut c = util_ctrl();
        c.note_busy(SimDuration::from_millis(900));
        // The window opened at t = 0; evaluating at t = 0 has no elapsed
        // time to form a fraction over.
        assert_eq!(c.evaluate(SimTime::ZERO, 0), None);
        assert_eq!(c.level(), 0);
        // The busy time was not discarded: it still counts when the
        // window has width.
        let shift = c.evaluate(SimTime::from_secs(1), 0).expect("steps up");
        assert!((shift.reading - 0.9).abs() < 1e-9);
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn update_count_thresholds_are_strict() {
        let mut c = DynMraiController::new(DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(2250),
            ],
            detector: Detector::UpdateCount { up: 50, down: 5 },
        });
        // Exactly AT `up`: hold (the window still resets).
        for _ in 0..50 {
            c.note_update_received();
        }
        assert_eq!(c.evaluate(SimTime::from_secs(1), 0), None);
        assert_eq!(c.level(), 0);
        for _ in 0..51 {
            c.note_update_received();
        }
        let shift = c.evaluate(SimTime::from_secs(2), 0).expect("steps up");
        assert_eq!((shift.from, shift.to), (0, 1));
        assert_eq!(shift.reading, 51.0);
        // Exactly AT `down`: hold.
        for _ in 0..5 {
            c.note_update_received();
        }
        assert_eq!(c.evaluate(SimTime::from_secs(3), 0), None);
        assert_eq!(c.level(), 1);
        for _ in 0..4 {
            c.note_update_received();
        }
        let shift = c.evaluate(SimTime::from_secs(4), 0).expect("steps down");
        assert_eq!((shift.from, shift.to), (1, 0));
        assert_eq!(shift.reading, 4.0);
    }

    #[test]
    fn hold_and_same_instant_report_no_shift() {
        let mut c = ctrl();
        // Middle band: no shift to report.
        assert_eq!(c.evaluate(SimTime::from_secs(1), 20), None);
        // A real shift at t = 2 ...
        assert!(c.evaluate(SimTime::from_secs(2), 100).is_some());
        // ... suppresses further shifts at the same instant even on
        // fresh overload evidence.
        assert_eq!(c.evaluate(SimTime::from_secs(2), 1000), None);
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn evaluate_only_redirects_future_timer_starts() {
        // Paper §4.3: "we do not modify the values of the running
        // timers". The controller never reaches into timers at all — a
        // level change only alters what `current_mrai` hands to the NEXT
        // timer start (see `BgpNode::next_mrai_interval`); a delay
        // already handed out is a plain value the shift cannot reach.
        let mut c = ctrl();
        let running = c.current_mrai();
        assert!(c.evaluate(SimTime::from_secs(1), 100).is_some());
        assert_eq!(running, SimDuration::from_millis(500));
        assert_eq!(c.current_mrai(), SimDuration::from_millis(1250));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_levels() {
        let _ = DynMraiController::new(DynamicMraiConfig {
            levels: vec![SimDuration::from_secs(2), SimDuration::from_secs(1)],
            detector: Detector::UpdateCount { up: 1, down: 0 },
        });
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn rejects_empty_levels() {
        let _ = DynMraiController::new(DynamicMraiConfig {
            levels: vec![],
            detector: Detector::UpdateCount { up: 1, down: 0 },
        });
    }
}
