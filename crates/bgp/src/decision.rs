//! The BGP decision process.
//!
//! The paper configures SSFNet so that "the path length (i.e., number of
//! hops along the route) was the only criterion used for selecting the
//! routes and there were no policy based restrictions" (§3.2). We rank:
//!
//! 1. lowest policy rank (only relevant when Gao–Rexford policies are on:
//!    customer < peer < provider, the `LOCAL_PREF` idiom; rank is uniformly
//!    0 otherwise, matching the paper);
//! 2. shortest AS path;
//! 3. eBGP-learned over iBGP-learned (only relevant in multi-router ASes);
//! 4. lowest advertising-peer id (a deterministic stand-in for the
//!    router-id tie-break).

use bgpsim_topology::RouterId;

use crate::msg::Prefix;
use crate::rib::{EngineRibIn, NextHop, RouteEntry, Selected};

/// Selects the best route for `prefix` among the Adj-RIB-In candidates.
///
/// Returns `None` if no peer advertises a (loop-free) route. Locally
/// originated prefixes never reach this function — the node always prefers
/// its own zero-length route.
///
/// ```
/// use bgpsim_bgp::decision::select_best;
/// use bgpsim_bgp::rib::{EngineRibIn, RouteEntry};
/// use bgpsim_bgp::{AsPath, Prefix};
/// use bgpsim_topology::{AsId, RouterId};
///
/// let mut rib = EngineRibIn::new();
/// let p = Prefix::new(0);
/// rib.insert(p, RouterId::new(9), RouteEntry {
///     path: AsPath::from_hops([AsId::new(1)]), ibgp: false, rank: 0 });
/// rib.insert(p, RouterId::new(2), RouteEntry {
///     path: AsPath::from_hops([AsId::new(3), AsId::new(1)]), ibgp: false, rank: 0 });
/// let best = select_best(p, &rib).expect("a candidate exists");
/// assert_eq!(best.path.len(), 1, "shortest path wins");
/// ```
pub fn select_best(prefix: Prefix, rib_in: &EngineRibIn) -> Option<Selected> {
    let mut best: Option<(RouterId, &RouteEntry)> = None;
    for (peer, entry) in rib_in.candidates(prefix) {
        best = Some(match best {
            None => (peer, entry),
            Some(current) => {
                if ranks_higher((peer, entry), current) {
                    (peer, entry)
                } else {
                    current
                }
            }
        });
    }
    best.map(to_selected)
}

/// The candidate sort key; the decision process installs the minimum.
///
/// The advertising peer is the last component, so the order is *strictly*
/// total — no two candidates compare equal. The incremental fast path
/// leans on that: whatever lost to the installed best at the previous
/// decision still ranks strictly below its key now, unless it changed.
pub fn decision_key(peer: RouterId, entry: &RouteEntry) -> (u8, usize, bool, RouterId) {
    (entry.rank, entry.path.len(), entry.ibgp, peer)
}

/// Whether candidate `a` outranks candidate `b`.
fn ranks_higher(a: (RouterId, &RouteEntry), b: (RouterId, &RouteEntry)) -> bool {
    decision_key(a.0, a.1) < decision_key(b.0, b.1)
}

fn to_selected((peer, entry): (RouterId, &RouteEntry)) -> Selected {
    Selected {
        path: entry.path.clone(),
        next_hop: NextHop::Peer(peer),
        via_ibgp: entry.ibgp,
        rank: entry.rank,
    }
}

/// What [`select_incremental`] concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Incremental {
    /// The fast path determined the new best route outright (`None` =
    /// prefix now unreachable).
    Resolved(Option<Selected>),
    /// The installed best route was withdrawn or worsened and no changed
    /// candidate covers for it — only a full rescan can find the
    /// runner-up among the unchanged candidates.
    NeedsRescan,
}

/// Incremental decision process: recomputes the best route for `prefix`
/// touching only the `changed` peers' candidates, given the currently
/// `installed` best.
///
/// Correctness rests on one invariant: every Adj-RIB-In mutation since
/// the previous decision for `prefix` came from a peer listed in
/// `changed` (over-listing peers is harmless). Then every *unchanged*
/// candidate still ranks strictly below the installed best's key, so:
///
/// * nothing installed — only changed peers can hold candidates at all;
/// * installed best untouched — it competes against the changed
///   candidates alone;
/// * installed best changed — if some changed candidate still ranks at
///   or above the old key it beats every unchanged candidate; otherwise
///   the result hides among the unchanged candidates and the caller must
///   fall back to [`select_best`] (reported via
///   [`Incremental::NeedsRescan`]).
///
/// The outcome is proven bit-identical to [`select_best`] by the
/// `incremental_selection_matches_full_rescan` property test.
pub fn select_incremental(
    prefix: Prefix,
    rib_in: &EngineRibIn,
    installed: Option<&Selected>,
    changed: &[RouterId],
) -> Incremental {
    // Best among the changed peers' current candidates.
    let mut best: Option<(RouterId, &RouteEntry)> = None;
    for &peer in changed {
        if let Some(entry) = rib_in.get(prefix, peer) {
            let cand = (peer, entry);
            best = Some(match best {
                None => cand,
                Some(current) => {
                    if ranks_higher(cand, current) {
                        cand
                    } else {
                        current
                    }
                }
            });
        }
    }

    let Some(installed) = installed else {
        return Incremental::Resolved(best.map(to_selected));
    };
    let NextHop::Peer(installed_peer) = installed.next_hop else {
        // Locally originated prefixes never reach the decision process;
        // be conservative if one somehow does.
        return Incremental::NeedsRescan;
    };
    let installed_key = (
        installed.rank,
        installed.path.len(),
        installed.via_ibgp,
        installed_peer,
    );

    if !changed.contains(&installed_peer) {
        // Keys are strictly total and the peers differ, so no tie-break
        // against the installed key is possible here.
        return Incremental::Resolved(Some(match best {
            Some((peer, entry)) if decision_key(peer, entry) < installed_key => {
                to_selected((peer, entry))
            }
            _ => installed.clone(),
        }));
    }
    match best {
        Some((peer, entry)) if decision_key(peer, entry) <= installed_key => {
            Incremental::Resolved(Some(to_selected((peer, entry))))
        }
        _ => Incremental::NeedsRescan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;
    use bgpsim_topology::AsId;

    fn entry(hops: &[u32], ibgp: bool) -> RouteEntry {
        RouteEntry {
            path: AsPath::from_hops(hops.iter().map(|&h| AsId::new(h))),
            ibgp,
            rank: 0,
        }
    }

    fn rid(i: u32) -> RouterId {
        RouterId::new(i)
    }

    #[test]
    fn empty_rib_gives_none() {
        let rib = EngineRibIn::new();
        assert!(select_best(Prefix::new(0), &rib).is_none());
    }

    #[test]
    fn shortest_path_wins() {
        let mut rib = EngineRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, rid(1), entry(&[1, 2, 3], false));
        rib.insert(p, rid(2), entry(&[4, 3], false));
        let best = select_best(p, &rib).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(2)));
        assert_eq!(best.path.len(), 2);
    }

    #[test]
    fn ebgp_beats_ibgp_on_equal_length() {
        let mut rib = EngineRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, rid(1), entry(&[7, 8], true));
        rib.insert(p, rid(2), entry(&[5, 8], false));
        let best = select_best(p, &rib).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(2)));
        assert!(!best.via_ibgp);
    }

    #[test]
    fn lowest_peer_id_breaks_full_ties() {
        let mut rib = EngineRibIn::new();
        let p = Prefix::new(0);
        // All candidates tie on length (1) and session type (eBGP).
        rib.insert(p, rid(9), entry(&[1], false));
        rib.insert(p, rid(3), entry(&[2], false));
        rib.insert(p, rid(7), entry(&[4], false));
        let best = select_best(p, &rib).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(3)));
    }

    #[test]
    fn selection_is_deterministic_in_insertion_order() {
        let p = Prefix::new(0);
        let mut rib1 = EngineRibIn::new();
        rib1.insert(p, rid(1), entry(&[1], false));
        rib1.insert(p, rid(2), entry(&[2], false));
        let mut rib2 = EngineRibIn::new();
        rib2.insert(p, rid(2), entry(&[2], false));
        rib2.insert(p, rid(1), entry(&[1], false));
        assert_eq!(select_best(p, &rib1), select_best(p, &rib2));
    }
}
