//! The BGP decision process.
//!
//! The paper configures SSFNet so that "the path length (i.e., number of
//! hops along the route) was the only criterion used for selecting the
//! routes and there were no policy based restrictions" (§3.2). We rank:
//!
//! 1. lowest policy rank (only relevant when Gao–Rexford policies are on:
//!    customer < peer < provider, the `LOCAL_PREF` idiom; rank is uniformly
//!    0 otherwise, matching the paper);
//! 2. shortest AS path;
//! 3. eBGP-learned over iBGP-learned (only relevant in multi-router ASes);
//! 4. lowest advertising-peer id (a deterministic stand-in for the
//!    router-id tie-break).

use bgpsim_topology::RouterId;

use crate::rib::{AdjRibIn, NextHop, RouteEntry, Selected};
use crate::msg::Prefix;

/// Selects the best route for `prefix` among the Adj-RIB-In candidates.
///
/// Returns `None` if no peer advertises a (loop-free) route. Locally
/// originated prefixes never reach this function — the node always prefers
/// its own zero-length route.
///
/// ```
/// use bgpsim_bgp::decision::select_best;
/// use bgpsim_bgp::rib::{AdjRibIn, RouteEntry};
/// use bgpsim_bgp::{AsPath, Prefix};
/// use bgpsim_topology::{AsId, RouterId};
///
/// let mut rib = AdjRibIn::new();
/// let p = Prefix::new(0);
/// rib.insert(p, RouterId::new(9), RouteEntry {
///     path: AsPath::from_hops([AsId::new(1)]), ibgp: false, rank: 0 });
/// rib.insert(p, RouterId::new(2), RouteEntry {
///     path: AsPath::from_hops([AsId::new(3), AsId::new(1)]), ibgp: false, rank: 0 });
/// let best = select_best(p, &rib).expect("a candidate exists");
/// assert_eq!(best.path.len(), 1, "shortest path wins");
/// ```
pub fn select_best(prefix: Prefix, rib_in: &AdjRibIn) -> Option<Selected> {
    let mut best: Option<(RouterId, &RouteEntry)> = None;
    for (peer, entry) in rib_in.candidates(prefix) {
        best = Some(match best {
            None => (peer, entry),
            Some(current) => {
                if ranks_higher((peer, entry), current) {
                    (peer, entry)
                } else {
                    current
                }
            }
        });
    }
    best.map(|(peer, entry)| Selected {
        path: entry.path.clone(),
        next_hop: NextHop::Peer(peer),
        via_ibgp: entry.ibgp,
        rank: entry.rank,
    })
}

/// Whether candidate `a` outranks candidate `b`.
fn ranks_higher(a: (RouterId, &RouteEntry), b: (RouterId, &RouteEntry)) -> bool {
    let key = |(peer, entry): (RouterId, &RouteEntry)| {
        (entry.rank, entry.path.len(), entry.ibgp, peer)
    };
    key(a) < key(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;
    use bgpsim_topology::AsId;

    fn entry(hops: &[u32], ibgp: bool) -> RouteEntry {
        RouteEntry { path: AsPath::from_hops(hops.iter().map(|&h| AsId::new(h))), ibgp, rank: 0 }
    }

    fn rid(i: u32) -> RouterId {
        RouterId::new(i)
    }

    #[test]
    fn empty_rib_gives_none() {
        let rib = AdjRibIn::new();
        assert!(select_best(Prefix::new(0), &rib).is_none());
    }

    #[test]
    fn shortest_path_wins() {
        let mut rib = AdjRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, rid(1), entry(&[1, 2, 3], false));
        rib.insert(p, rid(2), entry(&[4, 3], false));
        let best = select_best(p, &rib).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(2)));
        assert_eq!(best.path.len(), 2);
    }

    #[test]
    fn ebgp_beats_ibgp_on_equal_length() {
        let mut rib = AdjRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, rid(1), entry(&[7, 8], true));
        rib.insert(p, rid(2), entry(&[5, 8], false));
        let best = select_best(p, &rib).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(2)));
        assert!(!best.via_ibgp);
    }

    #[test]
    fn lowest_peer_id_breaks_full_ties() {
        let mut rib = AdjRibIn::new();
        let p = Prefix::new(0);
        // All candidates tie on length (1) and session type (eBGP).
        rib.insert(p, rid(9), entry(&[1], false));
        rib.insert(p, rid(3), entry(&[2], false));
        rib.insert(p, rid(7), entry(&[4], false));
        let best = select_best(p, &rib).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(3)));
    }

    #[test]
    fn selection_is_deterministic_in_insertion_order() {
        let p = Prefix::new(0);
        let mut rib1 = AdjRibIn::new();
        rib1.insert(p, rid(1), entry(&[1], false));
        rib1.insert(p, rid(2), entry(&[2], false));
        let mut rib2 = AdjRibIn::new();
        rib2.insert(p, rid(2), entry(&[2], false));
        rib2.insert(p, rid(1), entry(&[1], false));
        assert_eq!(select_best(p, &rib1), select_best(p, &rib2));
    }
}
