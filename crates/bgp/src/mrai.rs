//! MRAI timer state.
//!
//! RFC 1771's MinRouteAdvertisementInterval forbids sending a new
//! advertisement for the *same destination* to the *same peer* within the
//! interval. Real routers (and the paper, §2–3.2) approximate this with a
//! single **per-peer** timer: while it runs, changed routes accumulate; on
//! expiry everything pending is sent and the timer restarts. The
//! per-destination variant — one timer per (peer, destination) — is the
//! "straightforward" but unscalable implementation the paper describes;
//! both are supported so their behaviour can be compared.
//!
//! Timers here are pure state machines; actual scheduling is done by the
//! driver via generation-stamped expiry events (a stale generation means
//! the logical timer was restarted or cancelled — the event is ignored).

use serde::{Deserialize, Serialize};

/// Whether the MRAI applies per peer (deployed practice, the paper's
/// configuration) or per (peer, destination) (RFC-literal, unscalable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MraiScope {
    /// One timer per peer; pending changes batch behind it.
    #[default]
    PerPeer,
    /// One timer per (peer, destination).
    PerDestination,
}

/// A single logical MRAI timer with generation-based cancellation.
///
/// ```
/// use bgpsim_bgp::mrai::MraiTimer;
///
/// let mut t = MraiTimer::new();
/// assert!(!t.is_running());
/// let gen = t.start();
/// assert!(t.is_running());
/// assert!(!t.expire(gen + 1), "stale generation ignored");
/// assert!(t.expire(gen));
/// assert!(!t.is_running());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MraiTimer {
    running: bool,
    gen: u64,
}

impl MraiTimer {
    /// A stopped timer.
    pub fn new() -> MraiTimer {
        MraiTimer::default()
    }

    /// Whether the timer is currently running.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Starts (or restarts) the timer, returning the generation the expiry
    /// event must carry to be honoured.
    pub fn start(&mut self) -> u64 {
        self.gen += 1;
        self.running = true;
        self.gen
    }

    /// Handles an expiry event. Returns `true` if it matched the live
    /// generation (the timer genuinely expired); stale events return
    /// `false` and change nothing.
    pub fn expire(&mut self, gen: u64) -> bool {
        if self.running && gen == self.gen {
            self.running = false;
            true
        } else {
            false
        }
    }

    /// Stops the timer; any in-flight expiry event becomes stale.
    pub fn cancel(&mut self) {
        self.running = false;
        self.gen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = MraiTimer::new();
        assert!(!t.is_running());
        let g1 = t.start();
        assert!(t.is_running());
        assert!(t.expire(g1));
        assert!(!t.is_running());
        assert!(!t.expire(g1), "double expiry ignored");
    }

    #[test]
    fn restart_invalidates_previous_generation() {
        let mut t = MraiTimer::new();
        let g1 = t.start();
        let g2 = t.start();
        assert_ne!(g1, g2);
        assert!(!t.expire(g1));
        assert!(t.is_running(), "stale expiry must not stop the timer");
        assert!(t.expire(g2));
    }

    #[test]
    fn cancel_invalidates_inflight_expiry() {
        let mut t = MraiTimer::new();
        let g = t.start();
        t.cancel();
        assert!(!t.is_running());
        assert!(!t.expire(g));
    }

    #[test]
    fn default_scope_is_per_peer() {
        assert_eq!(MraiScope::default(), MraiScope::PerPeer);
    }
}
