//! Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

use std::collections::BTreeMap;

use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

use crate::msg::Prefix;
use crate::path::AsPath;

/// A route as stored in the Adj-RIB-In: the path a peer advertised, plus
/// whether it arrived over an iBGP session (affects both preference and
/// re-advertisement rules).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The AS path the peer advertised.
    pub path: AsPath,
    /// Whether the route was learned over iBGP.
    pub ibgp: bool,
    /// Policy rank (0 customer/local, 1 peer, 2 provider); always 0 when
    /// policies are off, so it never affects selection then.
    pub rank: u8,
}

/// Where the best route points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextHop {
    /// Locally originated (our own prefix).
    Local,
    /// Learned from this peer.
    Peer(RouterId),
}

/// The selected (best) route for a prefix, as installed in the Loc-RIB.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selected {
    /// The AS path of the best route (empty for local origination).
    pub path: AsPath,
    /// Where it points.
    pub next_hop: NextHop,
    /// Whether it was learned over iBGP (never true for local routes).
    pub via_ibgp: bool,
    /// Policy rank of the selected route (0 when policies are off or the
    /// route is local/customer-learned).
    pub rank: u8,
}

impl Selected {
    /// The local-origination entry for an owned prefix.
    pub fn local() -> Selected {
        Selected { path: AsPath::local(), next_hop: NextHop::Local, via_ibgp: false, rank: 0 }
    }
}

/// Adj-RIB-In: every route currently advertised to us, keyed by prefix and
/// advertising peer.
///
/// ```
/// use bgpsim_bgp::rib::{AdjRibIn, RouteEntry};
/// use bgpsim_bgp::{AsPath, Prefix};
/// use bgpsim_topology::{AsId, RouterId};
///
/// let mut rib = AdjRibIn::new();
/// let p = Prefix::new(0);
/// let peer = RouterId::new(1);
/// rib.insert(p, peer, RouteEntry {
///     path: AsPath::from_hops([AsId::new(1)]), ibgp: false, rank: 0 });
/// assert_eq!(rib.candidates(p).count(), 1);
/// rib.remove(p, peer);
/// assert_eq!(rib.candidates(p).count(), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjRibIn {
    routes: BTreeMap<Prefix, BTreeMap<RouterId, RouteEntry>>,
}

impl AdjRibIn {
    /// Creates an empty Adj-RIB-In.
    pub fn new() -> AdjRibIn {
        AdjRibIn::default()
    }

    /// Installs (or replaces) the route `peer` advertises for `prefix`.
    /// Returns the replaced entry, if any.
    pub fn insert(
        &mut self,
        prefix: Prefix,
        peer: RouterId,
        entry: RouteEntry,
    ) -> Option<RouteEntry> {
        self.routes.entry(prefix).or_default().insert(peer, entry)
    }

    /// Removes `peer`'s route for `prefix` (a withdrawal). Returns the
    /// removed entry, if any.
    pub fn remove(&mut self, prefix: Prefix, peer: RouterId) -> Option<RouteEntry> {
        let map = self.routes.get_mut(&prefix)?;
        let removed = map.remove(&peer);
        if map.is_empty() {
            self.routes.remove(&prefix);
        }
        removed
    }

    /// Drops every route learned from `peer` (session teardown), returning
    /// the affected prefixes in increasing order.
    pub fn remove_peer(&mut self, peer: RouterId) -> Vec<Prefix> {
        let mut affected = Vec::new();
        self.routes.retain(|prefix, map| {
            if map.remove(&peer).is_some() {
                affected.push(*prefix);
            }
            !map.is_empty()
        });
        affected
    }

    /// The route `peer` currently advertises for `prefix`, if any.
    pub fn get(&self, prefix: Prefix, peer: RouterId) -> Option<&RouteEntry> {
        self.routes.get(&prefix)?.get(&peer)
    }

    /// All candidate routes for `prefix`, in increasing peer-id order.
    pub fn candidates(&self, prefix: Prefix) -> impl Iterator<Item = (RouterId, &RouteEntry)> {
        self.routes.get(&prefix).into_iter().flatten().map(|(&peer, e)| (peer, e))
    }

    /// Prefixes for which `peer` currently advertises a route.
    pub fn prefixes_via(&self, peer: RouterId) -> Vec<Prefix> {
        self.routes
            .iter()
            .filter(|(_, map)| map.contains_key(&peer))
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total number of stored routes (over all prefixes and peers).
    pub fn len(&self) -> usize {
        self.routes.values().map(BTreeMap::len).sum()
    }

    /// Whether no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// Loc-RIB: the best route per prefix.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocRib {
    best: BTreeMap<Prefix, Selected>,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> LocRib {
        LocRib::default()
    }

    /// The best route for `prefix`, if the prefix is reachable.
    pub fn get(&self, prefix: Prefix) -> Option<&Selected> {
        self.best.get(&prefix)
    }

    /// Installs `selected` as the best route for `prefix`, returning the
    /// previous one.
    pub fn install(&mut self, prefix: Prefix, selected: Selected) -> Option<Selected> {
        self.best.insert(prefix, selected)
    }

    /// Removes the route for `prefix` (unreachable), returning it.
    pub fn remove(&mut self, prefix: Prefix) -> Option<Selected> {
        self.best.remove(&prefix)
    }

    /// Iterates over `(prefix, best)` in increasing prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &Selected)> {
        self.best.iter().map(|(&p, s)| (p, s))
    }

    /// Number of reachable prefixes.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// Whether nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

/// Adj-RIB-Out for one peer: exactly what we last advertised to them, used
/// to suppress redundant updates.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjRibOut {
    advertised: BTreeMap<Prefix, AsPath>,
}

impl AdjRibOut {
    /// Creates an empty Adj-RIB-Out.
    pub fn new() -> AdjRibOut {
        AdjRibOut::default()
    }

    /// What we last advertised for `prefix`, if anything.
    pub fn get(&self, prefix: Prefix) -> Option<&AsPath> {
        self.advertised.get(&prefix)
    }

    /// Records an advertisement.
    pub fn advertise(&mut self, prefix: Prefix, path: AsPath) {
        self.advertised.insert(prefix, path);
    }

    /// Records a withdrawal; returns whether anything had been advertised.
    pub fn withdraw(&mut self, prefix: Prefix) -> bool {
        self.advertised.remove(&prefix).is_some()
    }

    /// Number of currently advertised prefixes.
    pub fn len(&self) -> usize {
        self.advertised.len()
    }

    /// Whether nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.advertised.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::AsId;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::from_hops(hops.iter().map(|&h| AsId::new(h)))
    }

    fn entry(hops: &[u32]) -> RouteEntry {
        RouteEntry { path: path(hops), ibgp: false, rank: 0 }
    }

    #[test]
    fn rib_in_insert_replace_remove() {
        let mut rib = AdjRibIn::new();
        let (p, peer) = (Prefix::new(0), RouterId::new(1));
        assert!(rib.insert(p, peer, entry(&[1])).is_none());
        let old = rib.insert(p, peer, entry(&[1, 2]));
        assert_eq!(old.unwrap().path, path(&[1]));
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.remove(p, peer).unwrap().path, path(&[1, 2]));
        assert!(rib.is_empty());
        assert!(rib.remove(p, peer).is_none());
    }

    #[test]
    fn rib_in_candidates_sorted_by_peer() {
        let mut rib = AdjRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, RouterId::new(5), entry(&[1]));
        rib.insert(p, RouterId::new(2), entry(&[2]));
        let peers: Vec<RouterId> = rib.candidates(p).map(|(r, _)| r).collect();
        assert_eq!(peers, vec![RouterId::new(2), RouterId::new(5)]);
    }

    #[test]
    fn rib_in_remove_peer_reports_affected() {
        let mut rib = AdjRibIn::new();
        let peer = RouterId::new(3);
        rib.insert(Prefix::new(0), peer, entry(&[1]));
        rib.insert(Prefix::new(2), peer, entry(&[1]));
        rib.insert(Prefix::new(1), RouterId::new(4), entry(&[1]));
        let affected = rib.remove_peer(peer);
        assert_eq!(affected, vec![Prefix::new(0), Prefix::new(2)]);
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.prefixes_via(RouterId::new(4)), vec![Prefix::new(1)]);
    }

    #[test]
    fn loc_rib_lifecycle() {
        let mut rib = LocRib::new();
        let p = Prefix::new(0);
        assert!(rib.get(p).is_none());
        rib.install(p, Selected::local());
        assert_eq!(rib.get(p).unwrap().next_hop, NextHop::Local);
        assert_eq!(rib.len(), 1);
        let removed = rib.remove(p).unwrap();
        assert!(removed.path.is_empty());
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_rib_out_dedup_support() {
        let mut out = AdjRibOut::new();
        let p = Prefix::new(0);
        assert!(out.get(p).is_none());
        out.advertise(p, path(&[7]));
        assert_eq!(out.get(p), Some(&path(&[7])));
        assert!(out.withdraw(p));
        assert!(!out.withdraw(p), "double withdraw reports false");
        assert!(out.is_empty());
    }
}
