//! Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//!
//! Storage is compact (DESIGN.md §12): the Adj-RIB-In keeps one sorted row
//! of `(peer, route)` pairs per prefix — sized by the routes actually held,
//! not by the peers ever seen — and the Adj-RIB-Out is *delta-encoded*
//! against the Loc-RIB: a converged session stores nothing at all, because
//! everything it last advertised mirrors the node's current export. The
//! previous dense representations ([`DenseAdjRibIn`], [`DenseAdjRibOut`])
//! are kept behind the test-only `dense-rib` feature so equivalence
//! property tests can drive both layouts through identical histories, and
//! so the whole engine can be rebuilt on the old layout
//! (`--features dense-rib`) and checked bit-identical against the goldens.

use std::collections::BTreeMap;

use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

use crate::msg::Prefix;
use crate::path::AsPath;

/// A route as stored in the Adj-RIB-In: the path a peer advertised, plus
/// whether it arrived over an iBGP session (affects both preference and
/// re-advertisement rules).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The AS path the peer advertised.
    pub path: AsPath,
    /// Whether the route was learned over iBGP.
    pub ibgp: bool,
    /// Policy rank (0 customer/local, 1 peer, 2 provider); always 0 when
    /// policies are off, so it never affects selection then.
    pub rank: u8,
}

/// Where the best route points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextHop {
    /// Locally originated (our own prefix).
    Local,
    /// Learned from this peer.
    Peer(RouterId),
}

/// The selected (best) route for a prefix, as installed in the Loc-RIB.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selected {
    /// The AS path of the best route (empty for local origination).
    pub path: AsPath,
    /// Where it points.
    pub next_hop: NextHop,
    /// Whether it was learned over iBGP (never true for local routes).
    pub via_ibgp: bool,
    /// Policy rank of the selected route (0 when policies are off or the
    /// route is local/customer-learned).
    pub rank: u8,
}

impl Selected {
    /// The local-origination entry for an owned prefix.
    pub fn local() -> Selected {
        Selected {
            path: AsPath::local(),
            next_hop: NextHop::Local,
            via_ibgp: false,
            rank: 0,
        }
    }
}

/// Adj-RIB-In: every route currently advertised to us, keyed by prefix and
/// advertising peer.
///
/// Storage is compact: prefixes index rows directly (prefix ids are dense
/// per network) and each row is a peer-id-sorted `Vec` of the routes
/// actually held for that prefix — a handful of entries on a degree-4 AS,
/// zero bytes of heap for prefixes nothing advertises. Point lookups
/// binary-search the row; candidate iteration walks it in order, which is
/// exactly the increasing-peer-id order selection relies on for
/// determinism.
///
/// ```
/// use bgpsim_bgp::rib::{AdjRibIn, RouteEntry};
/// use bgpsim_bgp::{AsPath, Prefix};
/// use bgpsim_topology::{AsId, RouterId};
///
/// let mut rib = AdjRibIn::new();
/// let p = Prefix::new(0);
/// let peer = RouterId::new(1);
/// rib.insert(p, peer, RouteEntry {
///     path: AsPath::from_hops([AsId::new(1)]), ibgp: false, rank: 0 });
/// assert_eq!(rib.candidates(p).count(), 1);
/// rib.remove(p, peer);
/// assert_eq!(rib.candidates(p).count(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdjRibIn {
    /// `rows[prefix.index()]` — the routes held for that prefix, sorted by
    /// advertising peer id. Rows grow lazily on first touch.
    rows: Vec<Vec<(RouterId, RouteEntry)>>,
    /// Live route count across all rows.
    len: usize,
}

impl AdjRibIn {
    /// Creates an empty Adj-RIB-In.
    pub fn new() -> AdjRibIn {
        AdjRibIn::default()
    }

    /// Installs (or replaces) the route `peer` advertises for `prefix`.
    /// Returns the replaced entry, if any.
    pub fn insert(
        &mut self,
        prefix: Prefix,
        peer: RouterId,
        entry: RouteEntry,
    ) -> Option<RouteEntry> {
        let index = prefix.index();
        if self.rows.len() <= index {
            self.rows.resize_with(index + 1, Vec::new);
        }
        let row = &mut self.rows[index];
        match row.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => Some(std::mem::replace(&mut row[i].1, entry)),
            Err(i) => {
                row.insert(i, (peer, entry));
                self.len += 1;
                None
            }
        }
    }

    /// Removes `peer`'s route for `prefix` (a withdrawal). Returns the
    /// removed entry, if any.
    pub fn remove(&mut self, prefix: Prefix, peer: RouterId) -> Option<RouteEntry> {
        let row = self.rows.get_mut(prefix.index())?;
        let i = row.binary_search_by_key(&peer, |&(p, _)| p).ok()?;
        self.len -= 1;
        Some(row.remove(i).1)
    }

    /// Drops every route learned from `peer` (session teardown), returning
    /// the affected prefixes in increasing order.
    pub fn remove_peer(&mut self, peer: RouterId) -> Vec<Prefix> {
        let mut affected = Vec::new();
        for (index, row) in self.rows.iter_mut().enumerate() {
            if let Ok(i) = row.binary_search_by_key(&peer, |&(p, _)| p) {
                row.remove(i);
                self.len -= 1;
                affected.push(Prefix::new(index as u32));
            }
        }
        affected
    }

    /// The route `peer` currently advertises for `prefix`, if any.
    pub fn get(&self, prefix: Prefix, peer: RouterId) -> Option<&RouteEntry> {
        let row = self.rows.get(prefix.index())?;
        let i = row.binary_search_by_key(&peer, |&(p, _)| p).ok()?;
        Some(&row[i].1)
    }

    /// All candidate routes for `prefix`, in increasing peer-id order.
    pub fn candidates(&self, prefix: Prefix) -> impl Iterator<Item = (RouterId, &RouteEntry)> {
        self.rows
            .get(prefix.index())
            .into_iter()
            .flatten()
            .map(|(peer, entry)| (*peer, entry))
    }

    /// Prefixes for which `peer` currently advertises a route.
    pub fn prefixes_via(&self, peer: RouterId) -> Vec<Prefix> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.binary_search_by_key(&peer, |&(p, _)| p).is_ok())
            .map(|(index, _)| Prefix::new(index as u32))
            .collect()
    }

    /// Total number of stored routes (over all prefixes and peers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes currently committed to route storage (capacity, not just
    /// live entries) — the per-node contribution to the memory benchmark's
    /// arena accounting.
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(RouterId, RouteEntry)>();
        self.rows.capacity() * std::mem::size_of::<Vec<(RouterId, RouteEntry)>>()
            + self
                .rows
                .iter()
                .map(|row| row.capacity() * entry)
                .sum::<usize>()
    }

    /// Nested-map view of the stored routes (the pre-dense representation);
    /// the basis for equality and the serialized form.
    fn as_map(&self) -> BTreeMap<Prefix, BTreeMap<RouterId, &RouteEntry>> {
        let mut map: BTreeMap<Prefix, BTreeMap<RouterId, &RouteEntry>> = BTreeMap::new();
        for (index, row) in self.rows.iter().enumerate() {
            for (peer, entry) in row {
                map.entry(Prefix::new(index as u32))
                    .or_default()
                    .insert(*peer, entry);
            }
        }
        map
    }
}

// Equality is over the logical route set: row capacity and trailing empty
// rows depend on arrival order and must not distinguish two RIBs holding
// the same routes.
impl PartialEq for AdjRibIn {
    fn eq(&self, other: &AdjRibIn) -> bool {
        self.len == other.len && self.as_map() == other.as_map()
    }
}

impl Eq for AdjRibIn {}

// Hand-written so the wire shape stays exactly what the old
// `BTreeMap<Prefix, BTreeMap<RouterId, RouteEntry>>`-backed struct
// derived: `{"routes": {"<prefix>": {"<peer>": entry}}}`.
impl Serialize for AdjRibIn {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(String::from("routes"), self.as_map().to_value())])
    }
}

impl Deserialize for AdjRibIn {
    fn from_value(v: &serde::Value) -> Result<AdjRibIn, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error(format!(
                "AdjRibIn: expected object, found {}",
                v.kind()
            )));
        };
        let routes = fields
            .iter()
            .find(|(k, _)| k == "routes")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error(String::from("AdjRibIn: missing field `routes`")))?;
        let map = BTreeMap::<Prefix, BTreeMap<RouterId, RouteEntry>>::from_value(routes)?;
        let mut rib = AdjRibIn::new();
        for (prefix, peers) in map {
            for (peer, entry) in peers {
                rib.insert(prefix, peer, entry);
            }
        }
        Ok(rib)
    }
}

/// The Adj-RIB-In representation the engine runs on: the compact
/// [`AdjRibIn`] normally, the pre-compact [`DenseAdjRibIn`] when the
/// `dense-rib` equivalence feature is active. Both expose the same API and
/// the same deterministic candidate order, so the whole engine (and every
/// golden output) must be bit-identical under either — that is what the
/// feature exists to check.
#[cfg(not(feature = "dense-rib"))]
pub type EngineRibIn = AdjRibIn;

/// The Adj-RIB-In representation the engine runs on (`dense-rib` build:
/// the pre-compact dense layout, for equivalence runs).
#[cfg(feature = "dense-rib")]
pub type EngineRibIn = DenseAdjRibIn;

/// Loc-RIB: the best route per prefix.
///
/// Dense: prefix ids index the table directly. The decision process reads
/// the installed best on every run and the export path on every flush, so
/// both are a bounds-checked load instead of a `BTreeMap` walk.
#[derive(Clone, Debug, Default)]
pub struct LocRib {
    best: Vec<Option<Selected>>,
    len: usize,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> LocRib {
        LocRib::default()
    }

    /// The best route for `prefix`, if the prefix is reachable.
    pub fn get(&self, prefix: Prefix) -> Option<&Selected> {
        self.best.get(prefix.index())?.as_ref()
    }

    /// Installs `selected` as the best route for `prefix`, returning the
    /// previous one.
    pub fn install(&mut self, prefix: Prefix, selected: Selected) -> Option<Selected> {
        let index = prefix.index();
        if self.best.len() <= index {
            self.best.resize_with(index + 1, || None);
        }
        let previous = self.best[index].replace(selected);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Removes the route for `prefix` (unreachable), returning it.
    pub fn remove(&mut self, prefix: Prefix) -> Option<Selected> {
        let removed = self.best.get_mut(prefix.index())?.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Iterates over `(prefix, best)` in increasing prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &Selected)> {
        self.best
            .iter()
            .enumerate()
            .filter_map(|(index, s)| Some((Prefix::new(index as u32), s.as_ref()?)))
    }

    /// Number of reachable prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes committed to the best-route table (capacity).
    pub fn heap_bytes(&self) -> usize {
        self.best.capacity() * std::mem::size_of::<Option<Selected>>()
    }
}

// Equality over the logical route set (trailing empty slots are invisible).
impl PartialEq for LocRib {
    fn eq(&self, other: &LocRib) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for LocRib {}

// Same wire shape as the old `BTreeMap<Prefix, Selected>`-backed struct:
// `{"best": {"<prefix>": selected}}`.
impl Serialize for LocRib {
    fn to_value(&self) -> serde::Value {
        let map: BTreeMap<Prefix, &Selected> = self.iter().collect();
        serde::Value::Object(vec![(String::from("best"), map.to_value())])
    }
}

impl Deserialize for LocRib {
    fn from_value(v: &serde::Value) -> Result<LocRib, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error(format!(
                "LocRib: expected object, found {}",
                v.kind()
            )));
        };
        let best = fields
            .iter()
            .find(|(k, _)| k == "best")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error(String::from("LocRib: missing field `best`")))?;
        let map = BTreeMap::<Prefix, Selected>::from_value(best)?;
        let mut rib = LocRib::new();
        for (prefix, selected) in map {
            rib.install(prefix, selected);
        }
        Ok(rib)
    }
}

/// Delta-encoded Adj-RIB-Out for one peer session.
///
/// The full "what did we last advertise" table is never materialized.
/// Instead the structure maintains the **mirror invariant**: a prefix with
/// no entry here was last advertised exactly as the session's *current*
/// export of the Loc-RIB computes it — so a converged session stores
/// nothing at all. An entry means the prefix is **pending** (an MRAI flush
/// owes the peer an update) and records the *frozen* last-advertised path
/// (`None` = nothing was on the wire), captured just before the first
/// Loc-RIB change since the last flush broke the mirror.
///
/// The pending set doubles as the old explicit dirty set: its keys are, by
/// construction, exactly the prefixes whose advertised state may differ
/// from the current export. Flushing drains entries, which restores the
/// mirror for those prefixes — sending is what re-synchronizes the peer.
///
/// ```
/// use bgpsim_bgp::rib::AdjRibOut;
/// use bgpsim_bgp::{AsPath, Prefix};
/// use bgpsim_topology::AsId;
///
/// let mut out = AdjRibOut::new();
/// let p = Prefix::new(0);
/// assert!(out.is_clean(), "converged session stores nothing");
/// // About to change the Loc-RIB: freeze what the peer last heard.
/// out.freeze_with(p, || Some(AsPath::from_hops([AsId::new(7)])));
/// assert_eq!(out.pending().collect::<Vec<_>>(), vec![p]);
/// // Flush: the frozen value is what redundancy is checked against.
/// let frozen = out.take(p).unwrap();
/// assert_eq!(frozen, Some(AsPath::from_hops([AsId::new(7)])));
/// assert!(out.is_clean());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdjRibOut {
    /// Pending prefixes → frozen last-advertised path. Absent = mirrors
    /// the current export (zero bytes for the converged common case).
    overrides: BTreeMap<Prefix, Option<AsPath>>,
}

impl AdjRibOut {
    /// Creates an empty (fully mirroring) Adj-RIB-Out.
    pub fn new() -> AdjRibOut {
        AdjRibOut::default()
    }

    /// Marks `prefix` pending, freezing `advertised()` (the session's
    /// export of the *pre-change* Loc-RIB — by the mirror invariant, what
    /// the peer last heard) unless an earlier change already froze it.
    /// Must be called **before** the Loc-RIB change that breaks the mirror.
    pub fn freeze_with(&mut self, prefix: Prefix, advertised: impl FnOnce() -> Option<AsPath>) {
        self.overrides.entry(prefix).or_insert_with(advertised);
    }

    /// What the peer last heard for `prefix`, if the prefix is pending
    /// (`None` = not pending: the current export is the answer).
    pub fn frozen(&self, prefix: Prefix) -> Option<&Option<AsPath>> {
        self.overrides.get(&prefix)
    }

    /// Whether the prefix is pending an update.
    pub fn is_pending(&self, prefix: Prefix) -> bool {
        self.overrides.contains_key(&prefix)
    }

    /// Whether nothing is pending (every prefix mirrors the export).
    pub fn is_clean(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Number of pending prefixes.
    pub fn pending_len(&self) -> usize {
        self.overrides.len()
    }

    /// The pending prefixes, in increasing order.
    pub fn pending(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.overrides.keys().copied()
    }

    /// Takes one pending prefix's frozen value (flushing it re-establishes
    /// the mirror). `None` = the prefix was not pending.
    pub fn take(&mut self, prefix: Prefix) -> Option<Option<AsPath>> {
        self.overrides.remove(&prefix)
    }

    /// Takes the whole pending set (a full per-peer flush), leaving the
    /// session clean.
    pub fn take_pending(&mut self) -> BTreeMap<Prefix, Option<AsPath>> {
        std::mem::take(&mut self.overrides)
    }

    /// Heap bytes committed to pending entries (approximate: B-tree node
    /// overhead is charged per entry).
    pub fn heap_bytes(&self) -> usize {
        // Key + value + amortized B-tree node overhead (~2/3 occupancy of
        // 11-entry leaves, rounded to one pointer per entry).
        self.overrides.len()
            * (std::mem::size_of::<(Prefix, Option<AsPath>)>() + std::mem::size_of::<usize>())
    }
}

/// The dense slot-indexed Adj-RIB-In this engine used before the compact
/// sorted-row layout — kept (test-only) so equivalence property tests can
/// drive both representations through identical histories, and so the
/// whole engine can be rebuilt on it (`--features dense-rib`) and checked
/// against the goldens.
#[cfg(any(test, feature = "dense-rib"))]
#[derive(Clone, Debug, Default)]
pub struct DenseAdjRibIn {
    /// `(peer, column)` directory, sorted by peer id. Columns are assigned
    /// in first-seen order and never reused.
    slots: Vec<(RouterId, usize)>,
    /// `rows[prefix.index()][column]` — the route `peer` advertises for
    /// `prefix`.
    rows: Vec<Vec<Option<RouteEntry>>>,
    /// Live route count across all rows.
    len: usize,
}

#[cfg(any(test, feature = "dense-rib"))]
impl DenseAdjRibIn {
    /// Creates an empty dense Adj-RIB-In.
    pub fn new() -> DenseAdjRibIn {
        DenseAdjRibIn::default()
    }

    fn slot_of(&self, peer: RouterId) -> Option<usize> {
        self.slots
            .binary_search_by_key(&peer, |&(p, _)| p)
            .ok()
            .map(|i| self.slots[i].1)
    }

    fn slot_or_assign(&mut self, peer: RouterId) -> usize {
        match self.slots.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => self.slots[i].1,
            Err(i) => {
                let slot = self.slots.len();
                self.slots.insert(i, (peer, slot));
                slot
            }
        }
    }

    /// Installs (or replaces) the route `peer` advertises for `prefix`.
    pub fn insert(
        &mut self,
        prefix: Prefix,
        peer: RouterId,
        entry: RouteEntry,
    ) -> Option<RouteEntry> {
        let slot = self.slot_or_assign(peer);
        let index = prefix.index();
        if self.rows.len() <= index {
            self.rows.resize_with(index + 1, Vec::new);
        }
        let row = &mut self.rows[index];
        if row.len() <= slot {
            row.resize_with(slot + 1, || None);
        }
        let replaced = row[slot].replace(entry);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    /// Removes `peer`'s route for `prefix`.
    pub fn remove(&mut self, prefix: Prefix, peer: RouterId) -> Option<RouteEntry> {
        let slot = self.slot_of(peer)?;
        let removed = self.rows.get_mut(prefix.index())?.get_mut(slot)?.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Drops every route learned from `peer`, returning affected prefixes.
    pub fn remove_peer(&mut self, peer: RouterId) -> Vec<Prefix> {
        let Some(slot) = self.slot_of(peer) else {
            return Vec::new();
        };
        let mut affected = Vec::new();
        for (index, row) in self.rows.iter_mut().enumerate() {
            if row.get_mut(slot).and_then(Option::take).is_some() {
                affected.push(Prefix::new(index as u32));
                self.len -= 1;
            }
        }
        affected
    }

    /// The route `peer` currently advertises for `prefix`, if any.
    pub fn get(&self, prefix: Prefix, peer: RouterId) -> Option<&RouteEntry> {
        let slot = self.slot_of(peer)?;
        self.rows.get(prefix.index())?.get(slot)?.as_ref()
    }

    /// All candidate routes for `prefix`, in increasing peer-id order.
    pub fn candidates(&self, prefix: Prefix) -> impl Iterator<Item = (RouterId, &RouteEntry)> {
        let row = self.rows.get(prefix.index());
        self.slots.iter().filter_map(move |&(peer, slot)| {
            let entry = row?.get(slot)?.as_ref()?;
            Some((peer, entry))
        })
    }

    /// Prefixes for which `peer` currently advertises a route.
    pub fn prefixes_via(&self, peer: RouterId) -> Vec<Prefix> {
        let Some(slot) = self.slot_of(peer) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.get(slot).is_some_and(Option::is_some))
            .map(|(index, _)| Prefix::new(index as u32))
            .collect()
    }

    /// Total number of stored routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes committed to route storage (capacity) — the dense
    /// layout's column for the memory comparison.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(RouterId, usize)>()
            + self.rows.capacity() * std::mem::size_of::<Vec<Option<RouteEntry>>>()
            + self
                .rows
                .iter()
                .map(|row| row.capacity() * std::mem::size_of::<Option<RouteEntry>>())
                .sum::<usize>()
    }

    fn as_map(&self) -> BTreeMap<Prefix, BTreeMap<RouterId, &RouteEntry>> {
        let mut map: BTreeMap<Prefix, BTreeMap<RouterId, &RouteEntry>> = BTreeMap::new();
        for (index, row) in self.rows.iter().enumerate() {
            for &(peer, slot) in &self.slots {
                if let Some(entry) = row.get(slot).and_then(Option::as_ref) {
                    map.entry(Prefix::new(index as u32))
                        .or_default()
                        .insert(peer, entry);
                }
            }
        }
        map
    }
}

#[cfg(any(test, feature = "dense-rib"))]
impl PartialEq for DenseAdjRibIn {
    fn eq(&self, other: &DenseAdjRibIn) -> bool {
        self.len == other.len && self.as_map() == other.as_map()
    }
}

#[cfg(any(test, feature = "dense-rib"))]
impl Eq for DenseAdjRibIn {}

// Same wire shape as the compact [`AdjRibIn`] (and the pre-dense nested
// maps), so serialized forms compare across representations.
#[cfg(any(test, feature = "dense-rib"))]
impl Serialize for DenseAdjRibIn {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(String::from("routes"), self.as_map().to_value())])
    }
}

#[cfg(any(test, feature = "dense-rib"))]
impl Deserialize for DenseAdjRibIn {
    fn from_value(v: &serde::Value) -> Result<DenseAdjRibIn, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error(format!(
                "DenseAdjRibIn: expected object, found {}",
                v.kind()
            )));
        };
        let routes = fields
            .iter()
            .find(|(k, _)| k == "routes")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error(String::from("DenseAdjRibIn: missing field `routes`")))?;
        let map = BTreeMap::<Prefix, BTreeMap<RouterId, RouteEntry>>::from_value(routes)?;
        let mut rib = DenseAdjRibIn::new();
        for (prefix, peers) in map {
            for (peer, entry) in peers {
                rib.insert(prefix, peer, entry);
            }
        }
        Ok(rib)
    }
}

/// The dense materialized Adj-RIB-Out this engine used before the
/// delta-encoded [`AdjRibOut`]: a prefix-indexed table of exactly what was
/// last advertised. Kept (test-only) as the reference model the delta
/// representation's shadow assertions and equivalence tests check against.
#[cfg(any(test, feature = "dense-rib"))]
#[derive(Clone, Debug, Default)]
pub struct DenseAdjRibOut {
    advertised: Vec<Option<AsPath>>,
    len: usize,
}

#[cfg(any(test, feature = "dense-rib"))]
impl DenseAdjRibOut {
    /// Creates an empty dense Adj-RIB-Out.
    pub fn new() -> DenseAdjRibOut {
        DenseAdjRibOut::default()
    }

    /// What we last advertised for `prefix`, if anything.
    pub fn get(&self, prefix: Prefix) -> Option<&AsPath> {
        self.advertised.get(prefix.index())?.as_ref()
    }

    /// Records an advertisement.
    pub fn advertise(&mut self, prefix: Prefix, path: AsPath) {
        let index = prefix.index();
        if self.advertised.len() <= index {
            self.advertised.resize_with(index + 1, || None);
        }
        if self.advertised[index].replace(path).is_none() {
            self.len += 1;
        }
    }

    /// Records a withdrawal; returns whether anything had been advertised.
    pub fn withdraw(&mut self, prefix: Prefix) -> bool {
        let withdrawn = self
            .advertised
            .get_mut(prefix.index())
            .and_then(Option::take)
            .is_some();
        if withdrawn {
            self.len -= 1;
        }
        withdrawn
    }

    /// Iterates over `(prefix, path)` in increasing prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &AsPath)> {
        self.advertised
            .iter()
            .enumerate()
            .filter_map(|(index, p)| Some((Prefix::new(index as u32), p.as_ref()?)))
    }

    /// Number of currently advertised prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(any(test, feature = "dense-rib"))]
impl PartialEq for DenseAdjRibOut {
    fn eq(&self, other: &DenseAdjRibOut) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

#[cfg(any(test, feature = "dense-rib"))]
impl Eq for DenseAdjRibOut {}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::AsId;
    use proptest::prelude::*;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::from_hops(hops.iter().map(|&h| AsId::new(h)))
    }

    fn entry(hops: &[u32]) -> RouteEntry {
        RouteEntry {
            path: path(hops),
            ibgp: false,
            rank: 0,
        }
    }

    #[test]
    fn rib_in_insert_replace_remove() {
        let mut rib = AdjRibIn::new();
        let (p, peer) = (Prefix::new(0), RouterId::new(1));
        assert!(rib.insert(p, peer, entry(&[1])).is_none());
        let old = rib.insert(p, peer, entry(&[1, 2]));
        assert_eq!(old.unwrap().path, path(&[1]));
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.remove(p, peer).unwrap().path, path(&[1, 2]));
        assert!(rib.is_empty());
        assert!(rib.remove(p, peer).is_none());
    }

    #[test]
    fn rib_in_candidates_sorted_by_peer() {
        let mut rib = AdjRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, RouterId::new(5), entry(&[1]));
        rib.insert(p, RouterId::new(2), entry(&[2]));
        let peers: Vec<RouterId> = rib.candidates(p).map(|(r, _)| r).collect();
        assert_eq!(peers, vec![RouterId::new(2), RouterId::new(5)]);
    }

    #[test]
    fn rib_in_remove_peer_reports_affected() {
        let mut rib = AdjRibIn::new();
        let peer = RouterId::new(3);
        rib.insert(Prefix::new(0), peer, entry(&[1]));
        rib.insert(Prefix::new(2), peer, entry(&[1]));
        rib.insert(Prefix::new(1), RouterId::new(4), entry(&[1]));
        let affected = rib.remove_peer(peer);
        assert_eq!(affected, vec![Prefix::new(0), Prefix::new(2)]);
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.prefixes_via(RouterId::new(4)), vec![Prefix::new(1)]);
    }

    #[test]
    fn rib_in_equality_ignores_insertion_order() {
        // Same routes inserted in different peer orders must compare equal
        // regardless of internal layout history.
        let (p, a, b) = (Prefix::new(1), RouterId::new(2), RouterId::new(7));
        let mut x = AdjRibIn::new();
        x.insert(p, a, entry(&[1]));
        x.insert(p, b, entry(&[2]));
        let mut y = AdjRibIn::new();
        y.insert(p, b, entry(&[2]));
        y.insert(p, a, entry(&[1]));
        assert_eq!(x, y);
        y.remove(p, a);
        assert_ne!(x, y);
    }

    #[test]
    fn rib_in_serde_keeps_nested_map_shape() {
        let mut rib = AdjRibIn::new();
        rib.insert(Prefix::new(1), RouterId::new(3), entry(&[5]));
        let json = serde_json::to_string(&rib).unwrap();
        assert_eq!(
            json,
            r#"{"routes":{"1":{"3":{"path":[5],"ibgp":false,"rank":0}}}}"#
        );
        let back: AdjRibIn = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rib);
    }

    #[test]
    fn rib_in_empty_rows_commit_no_heap() {
        let mut rib = AdjRibIn::new();
        // Touch a far prefix: only the row spine grows, untouched rows are
        // empty Vecs with no heap allocation of their own.
        rib.insert(Prefix::new(64), RouterId::new(1), entry(&[1]));
        let entry_sz = std::mem::size_of::<(RouterId, RouteEntry)>();
        let spine = rib.rows.capacity() * std::mem::size_of::<Vec<(RouterId, RouteEntry)>>();
        assert!(
            rib.heap_bytes() <= spine + 4 * entry_sz,
            "{}",
            rib.heap_bytes()
        );
    }

    #[test]
    fn loc_rib_lifecycle() {
        let mut rib = LocRib::new();
        let p = Prefix::new(0);
        assert!(rib.get(p).is_none());
        rib.install(p, Selected::local());
        assert_eq!(rib.get(p).unwrap().next_hop, NextHop::Local);
        assert_eq!(rib.len(), 1);
        let removed = rib.remove(p).unwrap();
        assert!(removed.path.is_empty());
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_rib_out_freeze_take_cycle() {
        let mut out = AdjRibOut::new();
        let p = Prefix::new(0);
        assert!(out.is_clean());
        out.freeze_with(p, || Some(path(&[7])));
        // A second change before the flush must keep the FIRST frozen value:
        // that is what the peer actually last heard.
        out.freeze_with(p, || Some(path(&[7, 8])));
        assert!(out.is_pending(p));
        assert_eq!(out.pending_len(), 1);
        assert_eq!(out.frozen(p), Some(&Some(path(&[7]))));
        assert_eq!(out.take(p), Some(Some(path(&[7]))));
        assert!(out.take(p).is_none(), "double take reports not-pending");
        assert!(out.is_clean());
    }

    #[test]
    fn adj_rib_out_take_pending_drains_in_prefix_order() {
        let mut out = AdjRibOut::new();
        out.freeze_with(Prefix::new(3), || None);
        out.freeze_with(Prefix::new(1), || Some(path(&[2])));
        let drained: Vec<(Prefix, Option<AsPath>)> = out.take_pending().into_iter().collect();
        assert_eq!(
            drained,
            vec![(Prefix::new(1), Some(path(&[2]))), (Prefix::new(3), None)]
        );
        assert!(out.is_clean());
    }

    #[test]
    fn adj_rib_out_dedup_support() {
        let mut out = DenseAdjRibOut::new();
        let p = Prefix::new(0);
        assert!(out.get(p).is_none());
        out.advertise(p, path(&[7]));
        assert_eq!(out.get(p), Some(&path(&[7])));
        assert!(out.withdraw(p));
        assert!(!out.withdraw(p), "double withdraw reports false");
        assert!(out.is_empty());
    }

    // ── Dense vs compact equivalence ────────────────────────────────────
    //
    // Drive both Adj-RIB-In representations through identical operation
    // histories and require them indistinguishable through every read API
    // (get, candidates incl. order, prefixes_via, remove_peer reports,
    // len, serialized form). This is the representation half of the
    // engine-level equivalence run (`cargo test --features dense-rib`
    // rebuilds the whole engine on the dense layout against the goldens).

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u32, u32, Vec<u32>),
        Remove(u32, u32),
        RemovePeer(u32),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u32..12, 0u32..8, proptest::collection::vec(1u32..50, 0..4))
                .prop_map(|(p, r, hops)| Op::Insert(p, r, hops)),
            2 => (0u32..12, 0u32..8).prop_map(|(p, r)| Op::Remove(p, r)),
            1 => (0u32..8).prop_map(Op::RemovePeer),
        ]
    }

    proptest! {
        #[test]
        fn dense_and_compact_rib_in_agree(ops in proptest::collection::vec(op_strategy(), 0..80)) {
            let mut compact = AdjRibIn::new();
            let mut dense = DenseAdjRibIn::new();
            for op in &ops {
                match op {
                    Op::Insert(p, r, hops) => {
                        let (p, r) = (Prefix::new(*p), RouterId::new(*r));
                        let replaced_c = compact.insert(p, r, entry(hops));
                        let replaced_d = dense.insert(p, r, entry(hops));
                        prop_assert_eq!(replaced_c, replaced_d);
                    }
                    Op::Remove(p, r) => {
                        let (p, r) = (Prefix::new(*p), RouterId::new(*r));
                        prop_assert_eq!(compact.remove(p, r), dense.remove(p, r));
                    }
                    Op::RemovePeer(r) => {
                        let r = RouterId::new(*r);
                        prop_assert_eq!(compact.remove_peer(r), dense.remove_peer(r));
                    }
                }
                prop_assert_eq!(compact.len(), dense.len());
            }
            for p in 0..12u32 {
                let p = Prefix::new(p);
                let cc: Vec<(RouterId, &RouteEntry)> = compact.candidates(p).collect();
                let dc: Vec<(RouterId, &RouteEntry)> = dense.candidates(p).collect();
                prop_assert_eq!(cc, dc, "candidate sets or order differ");
                for r in 0..8u32 {
                    let r = RouterId::new(r);
                    prop_assert_eq!(compact.get(p, r), dense.get(p, r));
                }
            }
            for r in 0..8u32 {
                let r = RouterId::new(r);
                prop_assert_eq!(compact.prefixes_via(r), dense.prefixes_via(r));
            }
            prop_assert_eq!(
                serde_json::to_string(&compact).unwrap(),
                serde_json::to_string(&dense).unwrap()
            );
        }

        // The delta Adj-RIB-Out against the dense reference: simulate an
        // export table that changes under freeze/flush cycles and require
        // the delta's frozen values to always report exactly what the dense
        // table holds, and flushes to leave both in the same logical state.
        #[test]
        fn delta_rib_out_matches_dense_reference(
            rounds in proptest::collection::vec(
                proptest::collection::vec(
                    (0u32..6, (0u32..40).prop_map(|h| (h > 0).then_some(h))),
                    0..6,
                ),
                0..12,
            )
        ) {
            let mut delta = AdjRibOut::new();
            let mut dense = DenseAdjRibOut::new();
            // export: what the session currently exports per prefix.
            let mut export: BTreeMap<u32, Option<AsPath>> = BTreeMap::new();
            for changes in &rounds {
                // A burst of Loc-RIB changes: freeze-before-install each.
                for (p, hop) in changes {
                    let prefix = Prefix::new(*p);
                    let pre = export.get(p).cloned().unwrap_or(None);
                    delta.freeze_with(prefix, || pre.clone());
                    export.insert(*p, hop.map(|h| path(&[h])));
                }
                // Flush: drain pending, emit per the three-way match, and
                // mirror every emission into the dense reference.
                for (prefix, frozen) in delta.take_pending() {
                    let current = export.get(&(prefix.index() as u32)).cloned().unwrap_or(None);
                    prop_assert_eq!(
                        frozen.as_ref(),
                        dense.get(prefix),
                        "frozen value must be what the dense table last recorded"
                    );
                    match (current, frozen) {
                        (Some(path), Some(old)) if path == old => {}
                        (Some(path), _) => dense.advertise(prefix, path),
                        (None, Some(_)) => {
                            dense.withdraw(prefix);
                        }
                        (None, None) => {}
                    }
                }
                // Post-flush the mirror invariant holds: dense == export.
                for (p, exp) in &export {
                    prop_assert_eq!(dense.get(Prefix::new(*p)), exp.as_ref());
                }
                prop_assert!(delta.is_clean());
            }
        }
    }
}
