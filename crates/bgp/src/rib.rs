//! Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

use std::collections::BTreeMap;

use bgpsim_topology::RouterId;
use serde::{Deserialize, Serialize};

use crate::msg::Prefix;
use crate::path::AsPath;

/// A route as stored in the Adj-RIB-In: the path a peer advertised, plus
/// whether it arrived over an iBGP session (affects both preference and
/// re-advertisement rules).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The AS path the peer advertised.
    pub path: AsPath,
    /// Whether the route was learned over iBGP.
    pub ibgp: bool,
    /// Policy rank (0 customer/local, 1 peer, 2 provider); always 0 when
    /// policies are off, so it never affects selection then.
    pub rank: u8,
}

/// Where the best route points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextHop {
    /// Locally originated (our own prefix).
    Local,
    /// Learned from this peer.
    Peer(RouterId),
}

/// The selected (best) route for a prefix, as installed in the Loc-RIB.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selected {
    /// The AS path of the best route (empty for local origination).
    pub path: AsPath,
    /// Where it points.
    pub next_hop: NextHop,
    /// Whether it was learned over iBGP (never true for local routes).
    pub via_ibgp: bool,
    /// Policy rank of the selected route (0 when policies are off or the
    /// route is local/customer-learned).
    pub rank: u8,
}

impl Selected {
    /// The local-origination entry for an owned prefix.
    pub fn local() -> Selected {
        Selected {
            path: AsPath::local(),
            next_hop: NextHop::Local,
            via_ibgp: false,
            rank: 0,
        }
    }
}

/// Adj-RIB-In: every route currently advertised to us, keyed by prefix and
/// advertising peer.
///
/// Storage is dense: prefixes index rows directly (prefix ids are dense
/// per network) and each row is a `Vec` indexed by a per-peer column slot,
/// so the decision-process hot path (point lookups and candidate scans)
/// runs on flat arrays instead of nested `BTreeMap`s. The slot directory
/// is kept sorted by peer id so candidate iteration preserves the
/// increasing-peer-id order selection relies on for determinism.
///
/// ```
/// use bgpsim_bgp::rib::{AdjRibIn, RouteEntry};
/// use bgpsim_bgp::{AsPath, Prefix};
/// use bgpsim_topology::{AsId, RouterId};
///
/// let mut rib = AdjRibIn::new();
/// let p = Prefix::new(0);
/// let peer = RouterId::new(1);
/// rib.insert(p, peer, RouteEntry {
///     path: AsPath::from_hops([AsId::new(1)]), ibgp: false, rank: 0 });
/// assert_eq!(rib.candidates(p).count(), 1);
/// rib.remove(p, peer);
/// assert_eq!(rib.candidates(p).count(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdjRibIn {
    /// `(peer, column)` directory, sorted by peer id. Columns are assigned
    /// in first-seen order and never reused, so rows never reshuffle when
    /// a new peer shows up.
    slots: Vec<(RouterId, usize)>,
    /// `rows[prefix.index()][column]` — the route `peer` advertises for
    /// `prefix`. Rows and columns grow lazily on first touch.
    rows: Vec<Vec<Option<RouteEntry>>>,
    /// Live route count across all rows.
    len: usize,
}

impl AdjRibIn {
    /// Creates an empty Adj-RIB-In.
    pub fn new() -> AdjRibIn {
        AdjRibIn::default()
    }

    /// The column slot assigned to `peer`, if it ever advertised anything.
    fn slot_of(&self, peer: RouterId) -> Option<usize> {
        self.slots
            .binary_search_by_key(&peer, |&(p, _)| p)
            .ok()
            .map(|i| self.slots[i].1)
    }

    /// The column slot for `peer`, assigning the next free one on first
    /// use.
    fn slot_or_assign(&mut self, peer: RouterId) -> usize {
        match self.slots.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => self.slots[i].1,
            Err(i) => {
                let slot = self.slots.len();
                self.slots.insert(i, (peer, slot));
                slot
            }
        }
    }

    /// Installs (or replaces) the route `peer` advertises for `prefix`.
    /// Returns the replaced entry, if any.
    pub fn insert(
        &mut self,
        prefix: Prefix,
        peer: RouterId,
        entry: RouteEntry,
    ) -> Option<RouteEntry> {
        let slot = self.slot_or_assign(peer);
        let index = prefix.index();
        if self.rows.len() <= index {
            self.rows.resize_with(index + 1, Vec::new);
        }
        let row = &mut self.rows[index];
        if row.len() <= slot {
            row.resize_with(slot + 1, || None);
        }
        let replaced = row[slot].replace(entry);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    /// Removes `peer`'s route for `prefix` (a withdrawal). Returns the
    /// removed entry, if any.
    pub fn remove(&mut self, prefix: Prefix, peer: RouterId) -> Option<RouteEntry> {
        let slot = self.slot_of(peer)?;
        let removed = self.rows.get_mut(prefix.index())?.get_mut(slot)?.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Drops every route learned from `peer` (session teardown), returning
    /// the affected prefixes in increasing order.
    pub fn remove_peer(&mut self, peer: RouterId) -> Vec<Prefix> {
        let Some(slot) = self.slot_of(peer) else {
            return Vec::new();
        };
        let mut affected = Vec::new();
        for (index, row) in self.rows.iter_mut().enumerate() {
            if row.get_mut(slot).and_then(Option::take).is_some() {
                affected.push(Prefix::new(index as u32));
                self.len -= 1;
            }
        }
        affected
    }

    /// The route `peer` currently advertises for `prefix`, if any.
    pub fn get(&self, prefix: Prefix, peer: RouterId) -> Option<&RouteEntry> {
        let slot = self.slot_of(peer)?;
        self.rows.get(prefix.index())?.get(slot)?.as_ref()
    }

    /// All candidate routes for `prefix`, in increasing peer-id order.
    pub fn candidates(&self, prefix: Prefix) -> impl Iterator<Item = (RouterId, &RouteEntry)> {
        let row = self.rows.get(prefix.index());
        self.slots.iter().filter_map(move |&(peer, slot)| {
            let entry = row?.get(slot)?.as_ref()?;
            Some((peer, entry))
        })
    }

    /// Prefixes for which `peer` currently advertises a route.
    pub fn prefixes_via(&self, peer: RouterId) -> Vec<Prefix> {
        let Some(slot) = self.slot_of(peer) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.get(slot).is_some_and(Option::is_some))
            .map(|(index, _)| Prefix::new(index as u32))
            .collect()
    }

    /// Total number of stored routes (over all prefixes and peers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Nested-map view of the stored routes (the pre-dense representation);
    /// the basis for equality and the serialized form.
    fn as_map(&self) -> BTreeMap<Prefix, BTreeMap<RouterId, &RouteEntry>> {
        let mut map: BTreeMap<Prefix, BTreeMap<RouterId, &RouteEntry>> = BTreeMap::new();
        for (index, row) in self.rows.iter().enumerate() {
            for &(peer, slot) in &self.slots {
                if let Some(entry) = row.get(slot).and_then(Option::as_ref) {
                    map.entry(Prefix::new(index as u32))
                        .or_default()
                        .insert(peer, entry);
                }
            }
        }
        map
    }
}

// Equality is over the logical route set: slot assignment and row sizing
// depend on arrival order and must not distinguish two RIBs holding the
// same routes.
impl PartialEq for AdjRibIn {
    fn eq(&self, other: &AdjRibIn) -> bool {
        self.len == other.len && self.as_map() == other.as_map()
    }
}

impl Eq for AdjRibIn {}

// Hand-written so the wire shape stays exactly what the old
// `BTreeMap<Prefix, BTreeMap<RouterId, RouteEntry>>`-backed struct
// derived: `{"routes": {"<prefix>": {"<peer>": entry}}}`.
impl Serialize for AdjRibIn {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(String::from("routes"), self.as_map().to_value())])
    }
}

impl Deserialize for AdjRibIn {
    fn from_value(v: &serde::Value) -> Result<AdjRibIn, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error(format!(
                "AdjRibIn: expected object, found {}",
                v.kind()
            )));
        };
        let routes = fields
            .iter()
            .find(|(k, _)| k == "routes")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error(String::from("AdjRibIn: missing field `routes`")))?;
        let map = BTreeMap::<Prefix, BTreeMap<RouterId, RouteEntry>>::from_value(routes)?;
        let mut rib = AdjRibIn::new();
        for (prefix, peers) in map {
            for (peer, entry) in peers {
                rib.insert(prefix, peer, entry);
            }
        }
        Ok(rib)
    }
}

/// Loc-RIB: the best route per prefix.
///
/// Dense: prefix ids index the table directly. The decision process reads
/// the installed best on every run and the export path on every flush, so
/// both are a bounds-checked load instead of a `BTreeMap` walk.
#[derive(Clone, Debug, Default)]
pub struct LocRib {
    best: Vec<Option<Selected>>,
    len: usize,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> LocRib {
        LocRib::default()
    }

    /// The best route for `prefix`, if the prefix is reachable.
    pub fn get(&self, prefix: Prefix) -> Option<&Selected> {
        self.best.get(prefix.index())?.as_ref()
    }

    /// Installs `selected` as the best route for `prefix`, returning the
    /// previous one.
    pub fn install(&mut self, prefix: Prefix, selected: Selected) -> Option<Selected> {
        let index = prefix.index();
        if self.best.len() <= index {
            self.best.resize_with(index + 1, || None);
        }
        let previous = self.best[index].replace(selected);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Removes the route for `prefix` (unreachable), returning it.
    pub fn remove(&mut self, prefix: Prefix) -> Option<Selected> {
        let removed = self.best.get_mut(prefix.index())?.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Iterates over `(prefix, best)` in increasing prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &Selected)> {
        self.best
            .iter()
            .enumerate()
            .filter_map(|(index, s)| Some((Prefix::new(index as u32), s.as_ref()?)))
    }

    /// Number of reachable prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// Equality over the logical route set (trailing empty slots are invisible).
impl PartialEq for LocRib {
    fn eq(&self, other: &LocRib) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for LocRib {}

// Same wire shape as the old `BTreeMap<Prefix, Selected>`-backed struct:
// `{"best": {"<prefix>": selected}}`.
impl Serialize for LocRib {
    fn to_value(&self) -> serde::Value {
        let map: BTreeMap<Prefix, &Selected> = self.iter().collect();
        serde::Value::Object(vec![(String::from("best"), map.to_value())])
    }
}

impl Deserialize for LocRib {
    fn from_value(v: &serde::Value) -> Result<LocRib, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error(format!(
                "LocRib: expected object, found {}",
                v.kind()
            )));
        };
        let best = fields
            .iter()
            .find(|(k, _)| k == "best")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error(String::from("LocRib: missing field `best`")))?;
        let map = BTreeMap::<Prefix, Selected>::from_value(best)?;
        let mut rib = LocRib::new();
        for (prefix, selected) in map {
            rib.install(prefix, selected);
        }
        Ok(rib)
    }
}

/// Adj-RIB-Out for one peer: exactly what we last advertised to them, used
/// to suppress redundant updates.
///
/// Dense like [`LocRib`]: the redundancy check runs for every dirty
/// prefix on every MRAI flush.
#[derive(Clone, Debug, Default)]
pub struct AdjRibOut {
    advertised: Vec<Option<AsPath>>,
    len: usize,
}

impl AdjRibOut {
    /// Creates an empty Adj-RIB-Out.
    pub fn new() -> AdjRibOut {
        AdjRibOut::default()
    }

    /// What we last advertised for `prefix`, if anything.
    pub fn get(&self, prefix: Prefix) -> Option<&AsPath> {
        self.advertised.get(prefix.index())?.as_ref()
    }

    /// Records an advertisement.
    pub fn advertise(&mut self, prefix: Prefix, path: AsPath) {
        let index = prefix.index();
        if self.advertised.len() <= index {
            self.advertised.resize_with(index + 1, || None);
        }
        if self.advertised[index].replace(path).is_none() {
            self.len += 1;
        }
    }

    /// Records a withdrawal; returns whether anything had been advertised.
    pub fn withdraw(&mut self, prefix: Prefix) -> bool {
        let withdrawn = self
            .advertised
            .get_mut(prefix.index())
            .and_then(Option::take)
            .is_some();
        if withdrawn {
            self.len -= 1;
        }
        withdrawn
    }

    /// Iterates over `(prefix, path)` in increasing prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &AsPath)> {
        self.advertised
            .iter()
            .enumerate()
            .filter_map(|(index, p)| Some((Prefix::new(index as u32), p.as_ref()?)))
    }

    /// Number of currently advertised prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl PartialEq for AdjRibOut {
    fn eq(&self, other: &AdjRibOut) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for AdjRibOut {}

// Same wire shape as the old `BTreeMap<Prefix, AsPath>`-backed struct:
// `{"advertised": {"<prefix>": [hops]}}`.
impl Serialize for AdjRibOut {
    fn to_value(&self) -> serde::Value {
        let map: BTreeMap<Prefix, &AsPath> = self.iter().collect();
        serde::Value::Object(vec![(String::from("advertised"), map.to_value())])
    }
}

impl Deserialize for AdjRibOut {
    fn from_value(v: &serde::Value) -> Result<AdjRibOut, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error(format!(
                "AdjRibOut: expected object, found {}",
                v.kind()
            )));
        };
        let advertised = fields
            .iter()
            .find(|(k, _)| k == "advertised")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error(String::from("AdjRibOut: missing field `advertised`")))?;
        let map = BTreeMap::<Prefix, AsPath>::from_value(advertised)?;
        let mut rib = AdjRibOut::new();
        for (prefix, path) in map {
            rib.advertise(prefix, path);
        }
        Ok(rib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::AsId;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::from_hops(hops.iter().map(|&h| AsId::new(h)))
    }

    fn entry(hops: &[u32]) -> RouteEntry {
        RouteEntry {
            path: path(hops),
            ibgp: false,
            rank: 0,
        }
    }

    #[test]
    fn rib_in_insert_replace_remove() {
        let mut rib = AdjRibIn::new();
        let (p, peer) = (Prefix::new(0), RouterId::new(1));
        assert!(rib.insert(p, peer, entry(&[1])).is_none());
        let old = rib.insert(p, peer, entry(&[1, 2]));
        assert_eq!(old.unwrap().path, path(&[1]));
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.remove(p, peer).unwrap().path, path(&[1, 2]));
        assert!(rib.is_empty());
        assert!(rib.remove(p, peer).is_none());
    }

    #[test]
    fn rib_in_candidates_sorted_by_peer() {
        let mut rib = AdjRibIn::new();
        let p = Prefix::new(0);
        rib.insert(p, RouterId::new(5), entry(&[1]));
        rib.insert(p, RouterId::new(2), entry(&[2]));
        let peers: Vec<RouterId> = rib.candidates(p).map(|(r, _)| r).collect();
        assert_eq!(peers, vec![RouterId::new(2), RouterId::new(5)]);
    }

    #[test]
    fn rib_in_remove_peer_reports_affected() {
        let mut rib = AdjRibIn::new();
        let peer = RouterId::new(3);
        rib.insert(Prefix::new(0), peer, entry(&[1]));
        rib.insert(Prefix::new(2), peer, entry(&[1]));
        rib.insert(Prefix::new(1), RouterId::new(4), entry(&[1]));
        let affected = rib.remove_peer(peer);
        assert_eq!(affected, vec![Prefix::new(0), Prefix::new(2)]);
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.prefixes_via(RouterId::new(4)), vec![Prefix::new(1)]);
    }

    #[test]
    fn rib_in_equality_ignores_slot_layout() {
        // Same routes inserted in different peer orders must compare equal
        // even though the column assignment differs.
        let (p, a, b) = (Prefix::new(1), RouterId::new(2), RouterId::new(7));
        let mut x = AdjRibIn::new();
        x.insert(p, a, entry(&[1]));
        x.insert(p, b, entry(&[2]));
        let mut y = AdjRibIn::new();
        y.insert(p, b, entry(&[2]));
        y.insert(p, a, entry(&[1]));
        assert_eq!(x, y);
        y.remove(p, a);
        assert_ne!(x, y);
    }

    #[test]
    fn rib_in_serde_keeps_nested_map_shape() {
        let mut rib = AdjRibIn::new();
        rib.insert(Prefix::new(1), RouterId::new(3), entry(&[5]));
        let json = serde_json::to_string(&rib).unwrap();
        assert_eq!(
            json,
            r#"{"routes":{"1":{"3":{"path":[5],"ibgp":false,"rank":0}}}}"#
        );
        let back: AdjRibIn = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rib);
    }

    #[test]
    fn loc_rib_lifecycle() {
        let mut rib = LocRib::new();
        let p = Prefix::new(0);
        assert!(rib.get(p).is_none());
        rib.install(p, Selected::local());
        assert_eq!(rib.get(p).unwrap().next_hop, NextHop::Local);
        assert_eq!(rib.len(), 1);
        let removed = rib.remove(p).unwrap();
        assert!(removed.path.is_empty());
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_rib_out_dedup_support() {
        let mut out = AdjRibOut::new();
        let p = Prefix::new(0);
        assert!(out.get(p).is_none());
        out.advertise(p, path(&[7]));
        assert_eq!(out.get(p), Some(&path(&[7])));
        assert!(out.withdraw(p));
        assert!(!out.withdraw(p), "double withdraw reports false");
        assert!(out.is_empty());
    }
}
