//! # bgpsim-bgp — a BGP-4 path-vector protocol model
//!
//! The protocol substrate of the `bgpsim` workspace, reproducing the BGP
//! behaviour the paper *"Improving BGP Convergence Delay for Large-Scale
//! Failures"* (Sahoo, Kant, Mohapatra — DSN 2006) simulated with SSFNet:
//!
//! * [`msg`] — per-destination UPDATE messages (announce with AS path, or
//!   withdraw).
//! * [`path`] — AS paths with loop detection and prepending.
//! * [`rib`] — Adj-RIB-In, Loc-RIB and Adj-RIB-Out.
//! * [`iptrie`] — IPv4 CIDR prefixes, a longest-prefix-match binary trie
//!   with aggregation/deaggregation, and the [`iptrie::PrefixTable`] that
//!   interns CIDR prefixes into the stable dense slot indices the RIBs
//!   are keyed by (full-table workloads).
//! * [`decision`] — best-path selection: shortest AS path, eBGP over iBGP,
//!   lowest peer id (the paper uses path length as the only criterion and
//!   no routing policies, §3.2).
//! * [`mrai`] — the per-peer Minimum Route Advertisement Interval machinery
//!   with RFC 1771 jitter, plus optional per-destination mode and optional
//!   withdrawal rate limiting.
//! * [`queue`] — update-processing queue disciplines: default FIFO, the
//!   paper's **batched** per-destination processing with stale-update
//!   deletion (§4.4), and the "today's routers" TCP-buffer batch the paper
//!   compares against.
//! * [`damping`] — optional RFC 2439 route-flap damping, the deployed
//!   counterpart to the paper's schemes (and a famous aggravator of
//!   post-failure convergence, Mao et al. 2002).
//! * [`policy`] — optional Gao–Rexford commercial policies (customer /
//!   peer / provider preferences and valley-free export), off by default
//!   as in the paper, available for the policy-impact extension.
//! * [`dynmrai`] — the paper's **dynamic MRAI** controller driven by
//!   unfinished work (§4.3), plus the utilization and update-count variants
//!   the authors report trying.
//! * [`node`] — the router engine tying it all together: a single-server
//!   processing model with U(1, 30) ms per-update service times, dirty-route
//!   tracking, and MRAI-gated advertisement generation.
//!
//! The node is written in a *sans-io* style: it never touches a clock or a
//! network. Handlers take the current [`SimTime`](bgpsim_des::SimTime) and
//! return [`node::Action`]s (send a message, start the processing timer,
//! start an MRAI timer) that a driver executes against the discrete-event
//! scheduler. That keeps every protocol rule unit-testable without a
//! simulation loop; the `bgpsim` crate provides the loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod damping;
pub mod decision;
pub mod dynmrai;
pub mod iptrie;
pub mod mrai;
pub mod msg;
pub mod node;
pub mod path;
pub mod policy;
pub mod queue;
pub mod rib;
pub mod stats;
pub mod trace;

pub use config::{NodeConfig, NodeConfigBuilder};
pub use iptrie::{IpPrefix, IpTrie, PrefixTable};
pub use msg::{Prefix, UpdateAction, UpdateMsg};
pub use node::{Action, BgpNode};
pub use path::AsPath;
pub use trace::NodeEvent;
