//! AS paths.

use std::fmt;
use std::sync::{Arc, OnceLock};

use bgpsim_topology::AsId;
use serde::{Deserialize, Serialize};

/// An AS path: the ordered list of ASes a route has traversed, nearest
/// first.
///
/// An empty path denotes a locally originated route. Paths grow by
/// [`prepend`](AsPath::prepend)ing the advertising AS when a route crosses
/// an eBGP session (iBGP re-advertisement leaves the path untouched).
///
/// The hop list is a shared immutable `Arc<[AsId]>`: a path is cloned on
/// every RIB insert, every UPDATE message, and every Loc-RIB install, and
/// with shared storage each of those clones is a refcount bump instead of
/// a heap allocation. All locally originated routes share one static empty
/// allocation.
///
/// ```
/// use bgpsim_bgp::AsPath;
/// use bgpsim_topology::AsId;
///
/// let origin = AsPath::local();
/// let at_origin_peer = origin.prepend(AsId::new(7));
/// assert_eq!(at_origin_peer.len(), 1);
/// assert!(at_origin_peer.contains(AsId::new(7)));
/// ```
// `derived_hash_with_manual_eq`: the manual `PartialEq` below only adds a
// pointer-identity fast path; same allocation implies equal hops, so it
// agrees with the derived `Hash` over the hop slice.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Debug, Eq, PartialOrd, Ord, Hash)]
pub struct AsPath(Arc<[AsId]>);

// Shared storage makes identity a cheap witness for equality: clones of
// one path (the common case on the export path, where the Adj-RIB-Out
// holds a clone of exactly what the prepend cache returns) compare in one
// pointer check instead of a slice scan.
impl PartialEq for AsPath {
    fn eq(&self, other: &AsPath) -> bool {
        self.ptr_eq(other) || self.0 == other.0
    }
}

impl AsPath {
    /// The empty path of a locally originated route.
    pub fn local() -> AsPath {
        static EMPTY: OnceLock<Arc<[AsId]>> = OnceLock::new();
        AsPath(Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new()))))
    }

    /// Builds a path from nearest-first hops.
    pub fn from_hops<I: IntoIterator<Item = AsId>>(hops: I) -> AsPath {
        let mut it = hops.into_iter().peekable();
        if it.peek().is_none() {
            // Share the static empty allocation instead of making a new one.
            return AsPath::local();
        }
        AsPath(it.collect())
    }

    /// Number of AS hops. This is the paper's sole route-selection metric.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is a local (zero-hop) path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `asn` appears anywhere in the path (BGP loop detection).
    pub fn contains(&self, asn: AsId) -> bool {
        self.0.contains(&asn)
    }

    /// Returns a new path with `asn` prepended (what an eBGP speaker in
    /// `asn` advertises to its neighbors).
    #[must_use]
    pub fn prepend(&self, asn: AsId) -> AsPath {
        let mut hops = Vec::with_capacity(self.0.len() + 1);
        hops.push(asn);
        hops.extend_from_slice(&self.0);
        AsPath(hops.into())
    }

    /// The hops, nearest first.
    pub fn hops(&self) -> &[AsId] {
        &self.0
    }

    /// The originating AS (last hop), or `None` for a local path.
    pub fn origin(&self) -> Option<AsId> {
        self.0.last().copied()
    }

    /// Whether two paths share the same backing allocation (refcount-bump
    /// clones of one another). Used by the per-node prepend cache to key
    /// on identity rather than content, and by memory tests as the
    /// witness that snapshot forks share path storage instead of deep-
    /// copying it.
    pub fn ptr_eq(&self, other: &AsPath) -> bool {
        std::ptr::eq(self.0.as_ptr(), other.0.as_ptr())
    }

    /// Address of the backing hop storage: a cheap identity key, stable
    /// for as long as any clone of this path is alive.
    pub(crate) fn storage_key(&self) -> usize {
        self.0.as_ptr() as usize
    }
}

impl Default for AsPath {
    fn default() -> AsPath {
        AsPath::local()
    }
}

// Hand-written so the wire shape stays exactly what the old
// `AsPath(Vec<AsId>)` newtype derived: a plain JSON array of hops.
impl Serialize for AsPath {
    fn to_value(&self) -> serde::Value {
        self.hops().to_value()
    }
}

impl Deserialize for AsPath {
    fn from_value(v: &serde::Value) -> Result<AsPath, serde::Error> {
        Vec::<AsId>::from_value(v).map(AsPath::from_hops)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(local)");
        }
        for (i, asn) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{asn}")?;
        }
        Ok(())
    }
}

impl FromIterator<AsId> for AsPath {
    fn from_iter<I: IntoIterator<Item = AsId>>(iter: I) -> AsPath {
        AsPath::from_hops(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(i: u32) -> AsId {
        AsId::new(i)
    }

    #[test]
    fn local_path_is_empty() {
        let p = AsPath::local();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.origin(), None);
        assert_eq!(p.to_string(), "(local)");
    }

    #[test]
    fn prepend_builds_nearest_first() {
        let p = AsPath::local()
            .prepend(asn(3))
            .prepend(asn(2))
            .prepend(asn(1));
        assert_eq!(p.hops(), &[asn(1), asn(2), asn(3)]);
        assert_eq!(p.origin(), Some(asn(3)));
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "AS1 AS2 AS3");
    }

    #[test]
    fn loop_detection() {
        let p = AsPath::from_hops([asn(1), asn(2)]);
        assert!(p.contains(asn(2)));
        assert!(!p.contains(asn(3)));
    }

    #[test]
    fn prepend_does_not_mutate_original() {
        let p = AsPath::from_hops([asn(9)]);
        let q = p.prepend(asn(8));
        assert_eq!(p.len(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let p: AsPath = [asn(4), asn(5)].into_iter().collect();
        assert_eq!(p.hops(), &[asn(4), asn(5)]);
    }

    #[test]
    fn clones_share_storage() {
        let p = AsPath::from_hops([asn(1), asn(2)]);
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        assert_eq!(p.storage_key(), q.storage_key());
        // Equal content, distinct allocations.
        let r = AsPath::from_hops([asn(1), asn(2)]);
        assert_eq!(p, r);
        assert!(!p.ptr_eq(&r));
    }

    #[test]
    fn local_paths_share_one_allocation() {
        assert!(AsPath::local().ptr_eq(&AsPath::local()));
        assert!(AsPath::local().ptr_eq(&AsPath::default()));
        assert!(AsPath::local().ptr_eq(&AsPath::from_hops([])));
    }

    #[test]
    fn serde_round_trip_is_a_plain_array() {
        let p = AsPath::from_hops([asn(4), asn(7)]);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "[4,7]");
        let back: AsPath = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
