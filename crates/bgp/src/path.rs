//! AS paths.

use std::fmt;

use bgpsim_topology::AsId;
use serde::{Deserialize, Serialize};

/// An AS path: the ordered list of ASes a route has traversed, nearest
/// first.
///
/// An empty path denotes a locally originated route. Paths grow by
/// [`prepend`](AsPath::prepend)ing the advertising AS when a route crosses
/// an eBGP session (iBGP re-advertisement leaves the path untouched).
///
/// ```
/// use bgpsim_bgp::AsPath;
/// use bgpsim_topology::AsId;
///
/// let origin = AsPath::local();
/// let at_origin_peer = origin.prepend(AsId::new(7));
/// assert_eq!(at_origin_peer.len(), 1);
/// assert!(at_origin_peer.contains(AsId::new(7)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsPath(Vec<AsId>);

impl AsPath {
    /// The empty path of a locally originated route.
    pub fn local() -> AsPath {
        AsPath(Vec::new())
    }

    /// Builds a path from nearest-first hops.
    pub fn from_hops<I: IntoIterator<Item = AsId>>(hops: I) -> AsPath {
        AsPath(hops.into_iter().collect())
    }

    /// Number of AS hops. This is the paper's sole route-selection metric.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is a local (zero-hop) path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `asn` appears anywhere in the path (BGP loop detection).
    pub fn contains(&self, asn: AsId) -> bool {
        self.0.contains(&asn)
    }

    /// Returns a new path with `asn` prepended (what an eBGP speaker in
    /// `asn` advertises to its neighbors).
    #[must_use]
    pub fn prepend(&self, asn: AsId) -> AsPath {
        let mut hops = Vec::with_capacity(self.0.len() + 1);
        hops.push(asn);
        hops.extend_from_slice(&self.0);
        AsPath(hops)
    }

    /// The hops, nearest first.
    pub fn hops(&self) -> &[AsId] {
        &self.0
    }

    /// The originating AS (last hop), or `None` for a local path.
    pub fn origin(&self) -> Option<AsId> {
        self.0.last().copied()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(local)");
        }
        for (i, asn) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{asn}")?;
        }
        Ok(())
    }
}

impl FromIterator<AsId> for AsPath {
    fn from_iter<I: IntoIterator<Item = AsId>>(iter: I) -> AsPath {
        AsPath::from_hops(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(i: u32) -> AsId {
        AsId::new(i)
    }

    #[test]
    fn local_path_is_empty() {
        let p = AsPath::local();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.origin(), None);
        assert_eq!(p.to_string(), "(local)");
    }

    #[test]
    fn prepend_builds_nearest_first() {
        let p = AsPath::local().prepend(asn(3)).prepend(asn(2)).prepend(asn(1));
        assert_eq!(p.hops(), &[asn(1), asn(2), asn(3)]);
        assert_eq!(p.origin(), Some(asn(3)));
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "AS1 AS2 AS3");
    }

    #[test]
    fn loop_detection() {
        let p = AsPath::from_hops([asn(1), asn(2)]);
        assert!(p.contains(asn(2)));
        assert!(!p.contains(asn(3)));
    }

    #[test]
    fn prepend_does_not_mutate_original() {
        let p = AsPath::from_hops([asn(9)]);
        let q = p.prepend(asn(8));
        assert_eq!(p.len(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let p: AsPath = [asn(4), asn(5)].into_iter().collect();
        assert_eq!(p.hops(), &[asn(4), asn(5)]);
    }
}
