//! The BGP router engine.
//!
//! [`BgpNode`] is a *sans-io* state machine: event handlers take the current
//! simulation time and return [`Action`]s for the driver to execute. The
//! processing model is a single server — one batch of queued updates is in
//! service at a time, for the sum of the per-update U(proc_min, proc_max)
//! delays — which is precisely the overload mechanism the paper studies:
//! while the server is behind, the MRAI timer can expire and advertise a
//! route that queued-but-unprocessed updates are about to invalidate,
//! generating extra (invalid) updates downstream (§2).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bgpsim_des::rng::{jittered, uniform_duration};
use bgpsim_des::{SimDuration, SimTime};
use bgpsim_topology::{AsId, RouterId};
use rand::rngs::SmallRng;

use crate::config::{MraiPolicy, NodeConfig};
use crate::damping::DampingState;
use crate::decision::{select_best, select_incremental, Incremental};
use crate::dynmrai::DynMraiController;
use crate::mrai::{MraiScope, MraiTimer};
use crate::msg::{Prefix, UpdateAction, UpdateMsg};
use crate::path::AsPath;
use crate::policy::{may_export, PolicyMode, Relationship, RANK_PEER};
use crate::queue::{InputQueue, WorkItem};
#[cfg(any(test, feature = "dense-rib"))]
use crate::rib::DenseAdjRibOut;
use crate::rib::{AdjRibOut, EngineRibIn, LocRib, NextHop, RouteEntry, Selected};
use crate::stats::NodeStats;
use crate::trace::NodeEvent;

/// An instruction the node hands back to the simulation driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit `msg` to peer `to` (the driver adds the link delay).
    Send {
        /// Destination router.
        to: RouterId,
        /// The message.
        msg: UpdateMsg,
    },
    /// The node's processor is now busy for `duration`; deliver a
    /// processing-completion event afterwards.
    StartProcessing {
        /// Busy period (sum of the batch's per-update delays).
        duration: SimDuration,
    },
    /// Start an MRAI timer; deliver an expiry event carrying the same
    /// `(peer, prefix, gen)` after `delay`.
    StartMrai {
        /// The peer whose timer this is.
        peer: RouterId,
        /// `None` in per-peer scope; the destination in per-destination
        /// scope.
        prefix: Option<Prefix>,
        /// The (already jittered) interval.
        delay: SimDuration,
        /// Generation stamp; stale expiries are ignored.
        gen: u64,
    },
    /// Start a route-flap-damping reuse timer; deliver a reuse event
    /// carrying the same `(peer, prefix, gen)` after `delay`.
    StartReuse {
        /// The peer whose route was suppressed.
        peer: RouterId,
        /// The suppressed destination.
        prefix: Prefix,
        /// When to re-evaluate the penalty.
        delay: SimDuration,
        /// Suppression generation; stale events are ignored.
        gen: u64,
    },
}

/// Per-peer session state.
///
/// The Adj-RIB-Out is delta-encoded against the Loc-RIB (see
/// [`AdjRibOut`]): its pending set is also the dirty set — a prefix is
/// pending exactly when an unflushed Loc-RIB change may have outdated what
/// the peer last heard, and the entry freezes that last-heard path.
#[derive(Clone, Debug)]
struct PeerSession {
    ibgp: bool,
    /// The neighbor's business relationship to us (policy mode only).
    rel: Option<Relationship>,
    timer: MraiTimer,
    dest_timers: BTreeMap<Prefix, MraiTimer>,
    rib_out: AdjRibOut,
    /// Dense materialized mirror of what was actually sent, asserted
    /// against every frozen value the delta representation reports —
    /// the engine-level half of the dense-vs-compact equivalence proof.
    #[cfg(any(test, feature = "dense-rib"))]
    shadow_out: DenseAdjRibOut,
}

impl PeerSession {
    fn new(ibgp: bool, rel: Option<Relationship>) -> PeerSession {
        PeerSession {
            ibgp,
            rel,
            timer: MraiTimer::new(),
            dest_timers: BTreeMap::new(),
            rib_out: AdjRibOut::new(),
            #[cfg(any(test, feature = "dense-rib"))]
            shadow_out: DenseAdjRibOut::new(),
        }
    }
}

/// Flat sorted peer table: sessions stored contiguously, ordered by peer
/// id. Point lookups binary-search; iteration is ascending by
/// construction — the order every flush and export sweep relies on.
/// Replaces a `BTreeMap` plus a separate id `Vec`: one allocation, no
/// tree-node overhead, and snapshot clones are a flat `Vec` copy.
#[derive(Clone, Debug, Default)]
struct PeerTable {
    sessions: Vec<(RouterId, PeerSession)>,
}

impl PeerTable {
    fn idx(&self, peer: RouterId) -> Result<usize, usize> {
        self.sessions.binary_search_by_key(&peer, |&(p, _)| p)
    }

    fn contains(&self, peer: RouterId) -> bool {
        self.idx(peer).is_ok()
    }

    fn get(&self, peer: RouterId) -> Option<&PeerSession> {
        self.idx(peer).ok().map(|i| &self.sessions[i].1)
    }

    fn get_mut(&mut self, peer: RouterId) -> Option<&mut PeerSession> {
        match self.idx(peer) {
            Ok(i) => Some(&mut self.sessions[i].1),
            Err(_) => None,
        }
    }

    /// Inserts (or replaces) the session for `peer`, keeping order.
    fn insert(&mut self, peer: RouterId, sess: PeerSession) {
        match self.idx(peer) {
            Ok(i) => self.sessions[i].1 = sess,
            Err(i) => self.sessions.insert(i, (peer, sess)),
        }
    }

    fn remove(&mut self, peer: RouterId) -> Option<PeerSession> {
        self.idx(peer).ok().map(|i| self.sessions.remove(i).1)
    }

    fn len(&self) -> usize {
        self.sessions.len()
    }

    /// The `i`-th peer id in ascending order (stable across flushes, which
    /// never add or remove peers — the index loops rely on this).
    fn id_at(&self, i: usize) -> RouterId {
        self.sessions[i].0
    }

    fn ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.sessions.iter().map(|&(p, _)| p)
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (RouterId, &mut PeerSession)> {
        self.sessions.iter_mut().map(|(p, s)| (*p, s))
    }

    /// Heap bytes committed to session storage (table capacity plus each
    /// session's own allocations).
    fn heap_bytes(&self) -> usize {
        self.sessions.capacity() * std::mem::size_of::<(RouterId, PeerSession)>()
            + self
                .sessions
                .iter()
                .map(|(_, s)| {
                    s.rib_out.heap_bytes()
                        + s.dest_timers.len()
                            * (std::mem::size_of::<(Prefix, MraiTimer)>()
                                + std::mem::size_of::<usize>())
                })
                .sum::<usize>()
    }
}

/// Memoized prepend results: parent storage address → (parent clone,
/// prepended child). See [`BgpNode::prepended_in`].
type PrependCache = RefCell<HashMap<usize, (AsPath, AsPath)>>;

/// A simulated BGP router.
///
/// # Example
///
/// Two routers in different ASes; drive the exchange by hand:
///
/// ```
/// use bgpsim_bgp::{Action, BgpNode, NodeConfig, Prefix};
/// use bgpsim_des::SimTime;
/// use bgpsim_topology::{AsId, RouterId};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let cfg = NodeConfig::default();
/// let mut a = BgpNode::new(RouterId::new(0), AsId::new(0), cfg.clone(),
///                          SmallRng::seed_from_u64(1));
/// a.add_peer(RouterId::new(1), false);
/// let actions = a.originate(SimTime::ZERO, Prefix::new(0));
/// assert!(actions.iter().any(|act| matches!(act, Action::Send { .. })));
/// ```
#[derive(Clone, Debug)]
pub struct BgpNode {
    id: RouterId,
    as_id: AsId,
    own_prefixes: BTreeSet<Prefix>,
    peers: PeerTable,
    rib_in: EngineRibIn,
    loc_rib: LocRib,
    queue: InputQueue,
    in_service: Vec<WorkItem>,
    /// Shared, refcounted configuration: the network builds one allocation
    /// per distinct config (the per-network arena) and every node — and
    /// every snapshot fork — points at it.
    cfg: Arc<NodeConfig>,
    dyn_ctrl: Option<DynMraiController>,
    /// Flap-damping state per (peer, prefix) — only populated when damping
    /// is configured.
    damp: BTreeMap<(RouterId, Prefix), DampingState>,
    /// Monotonic suppression-generation source. Damping state dies with
    /// its session ([`BgpNode::on_peer_down`]); a per-state counter would
    /// restart at zero when the session re-forms and the same
    /// (peer, prefix) gets suppressed again, so a reuse timer still in
    /// flight from the torn-down state could alias the new suppression
    /// and release it prematurely (a phantom re-advertisement of the
    /// parked route). Generations drawn from a counter that survives
    /// teardown keep stale timers permanently mismatched.
    damp_next_gen: u64,
    /// The latest route state received while suppressed (`None` =
    /// withdrawn); applied to the Adj-RIB-In at release time.
    suppressed_routes: BTreeMap<(RouterId, Prefix), Option<RouteEntry>>,
    /// Memoized `path.prepend(self.as_id)` results, keyed by the parent
    /// path's storage address. The parent clone in the value keeps that
    /// allocation (and so the key) alive and unambiguous. `RefCell`
    /// because [`BgpNode::path_towards`] computes exports through `&self`.
    prepend_cache: PrependCache,
    rng: SmallRng,
    stats: NodeStats,
    /// Trace-event buffer: `Some` while tracing is on. Handlers push
    /// observations here; the driver drains after each handler call.
    /// `None` keeps the off cost to one branch per hook site.
    trace: Option<Vec<NodeEvent>>,
}

impl BgpNode {
    /// Creates a router with no peers and no routes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`NodeConfig::validate`]).
    pub fn new(id: RouterId, as_id: AsId, cfg: NodeConfig, rng: SmallRng) -> BgpNode {
        BgpNode::with_shared_config(id, as_id, Arc::new(cfg), rng)
    }

    /// Like [`BgpNode::new`], but sharing an already-allocated config.
    /// The network deduplicates configurations through this: every node
    /// built from the same settings holds the same allocation, and
    /// snapshot forks keep sharing it (see
    /// [`BgpNode::shares_config_allocation`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`NodeConfig::validate`]).
    pub fn with_shared_config(
        id: RouterId,
        as_id: AsId,
        cfg: Arc<NodeConfig>,
        rng: SmallRng,
    ) -> BgpNode {
        cfg.validate();
        let dyn_ctrl = match &cfg.mrai {
            MraiPolicy::Dynamic(d) => Some(DynMraiController::new(d.clone())),
            MraiPolicy::Constant(_) => None,
        };
        let queue = InputQueue::new(cfg.queue);
        BgpNode {
            id,
            as_id,
            own_prefixes: BTreeSet::new(),
            peers: PeerTable::default(),
            rib_in: EngineRibIn::new(),
            loc_rib: LocRib::new(),
            queue,
            in_service: Vec::new(),
            cfg,
            dyn_ctrl,
            damp: BTreeMap::new(),
            damp_next_gen: 0,
            suppressed_routes: BTreeMap::new(),
            prepend_cache: RefCell::new(HashMap::new()),
            rng,
            stats: NodeStats::default(),
            trace: None,
        }
    }

    /// This router's id.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// This router's AS.
    pub fn as_id(&self) -> AsId {
        self.as_id
    }

    /// Registers a BGP session with `peer` (`ibgp` if both routers share an
    /// AS). Call before the simulation starts.
    pub fn add_peer(&mut self, peer: RouterId, ibgp: bool) {
        self.register_peer(peer, PeerSession::new(ibgp, None));
    }

    /// Registers an eBGP session with a business relationship (used when
    /// [`PolicyMode::GaoRexford`] is configured).
    pub fn add_peer_with_relationship(&mut self, peer: RouterId, ibgp: bool, rel: Relationship) {
        self.register_peer(peer, PeerSession::new(ibgp, Some(rel)));
    }

    fn register_peer(&mut self, peer: RouterId, sess: PeerSession) {
        self.peers.insert(peer, sess);
    }

    /// Ids of current peers, ascending.
    pub fn peer_ids(&self) -> Vec<RouterId> {
        self.peers.ids().collect()
    }

    /// Read access to the Loc-RIB.
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// Read access to the Adj-RIB-In.
    pub fn rib_in(&self) -> &EngineRibIn {
        &self.rib_in
    }

    /// Whether this node shares its config allocation with `other` — true
    /// for nodes the network built from the same configuration and for
    /// snapshot forks, which must keep sharing rather than deep-copy.
    pub fn shares_config_allocation(&self, other: &BgpNode) -> bool {
        Arc::ptr_eq(&self.cfg, &other.cfg)
    }

    /// Approximate heap bytes committed to this node's routing state:
    /// Adj-RIB-In rows, the Loc-RIB table, per-peer sessions (including
    /// delta Adj-RIB-Out entries), and the input queue. Capacity, not
    /// just live entries — what the memory benchmark charges per node.
    pub fn rib_heap_bytes(&self) -> usize {
        self.rib_in.heap_bytes()
            + self.loc_rib.heap_bytes()
            + self.peers.heap_bytes()
            + self.queue.heap_bytes()
            + self.in_service.capacity() * std::mem::size_of::<WorkItem>()
    }

    /// Routes this node currently stores (Adj-RIB-In entries plus
    /// installed best routes) — the denominator of the bytes-per-route
    /// memory metric.
    pub fn route_count(&self) -> usize {
        self.rib_in.len() + self.loc_rib.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &NodeStats {
        self.stats_with_queue()
    }

    fn stats_with_queue(&self) -> &NodeStats {
        &self.stats
    }

    /// Zeroes the counters, including the queue's stale-deletion and peak
    /// trackers (done after initial convergence so only post-failure
    /// activity is measured).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.queue.reset_counters();
    }

    /// Switches this node to a constant MRAI from now on (used by the
    /// oracle failure-size-aware scheme: the paper's future-work item of
    /// "accurately and quickly setting the MRAI consistent with the extent
    /// of failure"). Running timers are unaffected; the new value applies
    /// from the next timer start, like the dynamic scheme's level changes.
    pub fn set_constant_mrai(&mut self, mrai: SimDuration) {
        // Copy-on-write: this node forks its (possibly shared) config;
        // everyone else keeps the original allocation.
        Arc::make_mut(&mut self.cfg).mrai = MraiPolicy::Constant(mrai);
        self.dyn_ctrl = None;
    }

    /// Stale updates the batching discipline deleted unprocessed.
    pub fn stale_deleted(&self) -> u64 {
        self.queue.deleted_stale()
    }

    /// Largest input-queue length observed.
    pub fn queue_peak(&self) -> usize {
        self.queue.peak_len()
    }

    /// Updates waiting to be processed (excluding the batch in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a batch is currently in service.
    pub fn is_busy(&self) -> bool {
        !self.in_service.is_empty()
    }

    /// Current dynamic-MRAI level, if the node runs the dynamic scheme.
    pub fn dynamic_level(&self) -> Option<usize> {
        self.dyn_ctrl.as_ref().map(DynMraiController::level)
    }

    /// Routes currently suppressed by flap damping.
    pub fn suppressed_count(&self) -> usize {
        self.damp.values().filter(|s| s.is_suppressed()).count()
    }

    /// Turns handler-level trace recording on or off (see the [`trace`]
    /// module). Turning it off discards any undrained events.
    ///
    /// [`trace`]: crate::trace
    pub fn set_tracing(&mut self, on: bool) {
        if on {
            if self.trace.is_none() {
                self.trace = Some(Vec::new());
            }
        } else {
            self.trace = None;
        }
    }

    /// Whether trace recording is on.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Drains the buffered trace events in recording order, keeping the
    /// buffer's capacity (the driver calls this after every handler).
    pub fn drain_trace(&mut self) -> impl Iterator<Item = NodeEvent> + '_ {
        self.trace
            .as_mut()
            .map(|b| b.drain(..))
            .into_iter()
            .flatten()
    }

    /// Takes the buffered trace events as a `Vec` (used by the sharded
    /// loop, which ships them to the serial commit phase).
    pub fn take_trace(&mut self) -> Vec<NodeEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    #[inline]
    fn trace_push(&mut self, ev: NodeEvent) {
        if let Some(buf) = &mut self.trace {
            buf.push(ev);
        }
    }

    /// Records the stale updates a queue operation deleted since `before`.
    #[inline]
    fn trace_stale(&mut self, before: u64) {
        if self.trace.is_some() {
            let count = self.queue.deleted_stale() - before;
            if count > 0 {
                self.trace_push(NodeEvent::StaleDeleted { count });
            }
        }
    }

    /// Records the queue depth after a queue-affecting handler.
    #[inline]
    fn trace_depth(&mut self) {
        if self.trace.is_some() {
            let ev = NodeEvent::QueueDepth {
                queued: self.queue.len() as u32,
                in_service: self.in_service.len() as u32,
            };
            self.trace_push(ev);
        }
    }

    /// Originates `prefix` locally: it becomes one of this node's own
    /// prefixes, is installed in the Loc-RIB and advertised to every peer.
    /// A node may originate any number of prefixes.
    pub fn originate(&mut self, now: SimTime, prefix: Prefix) -> Vec<Action> {
        // Freeze before the install: the frozen values must capture what
        // each peer last heard, i.e. the export of the *pre-change* Loc-RIB.
        self.freeze_out_all(prefix);
        self.own_prefixes.insert(prefix);
        self.loc_rib.install(prefix, Selected::local());
        self.stats.best_changes += 1;
        self.trace_push(NodeEvent::BestChanged {
            prefix,
            path_len: Some(0),
        });
        self.flush_all(now)
    }

    /// Withdraws a locally originated `prefix` — the inverse of
    /// [`originate`](Self::originate). The zero-hop local route leaves the
    /// Loc-RIB, the best learned route (if any) takes over, and every peer
    /// hears the change (withdrawal or replacement) subject to MRAI. A
    /// no-op if the prefix is not currently originated here.
    pub fn withdraw_origin(&mut self, now: SimTime, prefix: Prefix) -> Vec<Action> {
        if !self.own_prefixes.remove(&prefix) {
            return Vec::new();
        }
        // Freeze before the change so the frozen values capture what each
        // peer last heard (same ordering rule as `originate`).
        self.freeze_out_all(prefix);
        // The local route bypassed the decision process entirely; with it
        // gone a full candidate rescan picks the successor.
        let new = select_best(prefix, &self.rib_in);
        let path_len = new.as_ref().map(|sel| sel.path.len() as u32);
        match new {
            Some(sel) => {
                self.loc_rib.install(prefix, sel);
            }
            None => {
                self.loc_rib.remove(prefix);
            }
        }
        self.stats.best_changes += 1;
        self.trace_push(NodeEvent::BestChanged { prefix, path_len });
        self.flush_all(now)
    }

    /// Handles an UPDATE arriving from `from`.
    pub fn on_update(&mut self, now: SimTime, from: RouterId, msg: UpdateMsg) -> Vec<Action> {
        self.stats.updates_received += 1;
        if self.trace.is_some() {
            self.trace_push(NodeEvent::Received {
                from,
                prefix: msg.prefix,
                advertise: msg.action.is_advertise(),
            });
        }
        if !self.peers.contains(from) {
            // Session already torn down; the message is lost.
            return Vec::new();
        }
        if let Some(ctrl) = &mut self.dyn_ctrl {
            ctrl.note_update_received();
        }
        let stale_before = self.queue.deleted_stale();
        self.queue.push(WorkItem::Update { from, msg });
        self.trace_stale(stale_before);
        let actions = self.maybe_start_processing(now);
        self.trace_depth();
        actions
    }

    /// Handles the completion of the batch in service.
    pub fn on_proc_done(&mut self, now: SimTime) -> Vec<Action> {
        let mut batch = std::mem::take(&mut self.in_service);
        debug_assert!(
            !batch.is_empty(),
            "processing completed with nothing in service"
        );
        let mut damping_actions: Vec<Action> = Vec::new();
        let mut changed: BTreeSet<Prefix> = BTreeSet::new();
        if batch.len() == 1 {
            // FIFO service (and most batched service) completes one item;
            // skip the grouping machinery entirely.
            let item = batch.pop().expect("length checked");
            self.stats.updates_processed += 1;
            let (prefix, peer) = (item.prefix(), item.peer());
            self.trace_push(NodeEvent::Processed { peer, prefix });
            damping_actions.extend(self.apply_item(now, item));
            if self.run_decision(prefix, &[peer]) {
                changed.insert(prefix);
            }
        } else {
            // Per affected prefix, the peers whose Adj-RIB-In entries this
            // batch may touch — the incremental decision process only has
            // to compare these against the installed best.
            let mut affected: BTreeMap<Prefix, Vec<RouterId>> = BTreeMap::new();
            for item in batch {
                self.stats.updates_processed += 1;
                self.trace_push(NodeEvent::Processed {
                    peer: item.peer(),
                    prefix: item.prefix(),
                });
                let touched = affected.entry(item.prefix()).or_default();
                if !touched.contains(&item.peer()) {
                    touched.push(item.peer());
                }
                damping_actions.extend(self.apply_item(now, item));
            }
            for (prefix, touched) in &affected {
                if self.run_decision(*prefix, touched) {
                    changed.insert(*prefix);
                }
            }
        }
        let mut actions = damping_actions;
        if self.cfg.expedite_improvements && !changed.is_empty() {
            actions.extend(self.expedite_flush(now, &changed));
        }
        actions.extend(self.flush_all(now));
        actions.extend(self.maybe_start_processing(now));
        self.trace_depth();
        actions
    }

    /// Deshpande & Sikdar's timer-cancelling scheme: when a change would
    /// *improve* (shorten or create) the route a peer holds from us, cancel
    /// that peer's running MRAI timer and send immediately.
    fn expedite_flush(&mut self, now: SimTime, changed: &BTreeSet<Prefix>) -> Vec<Action> {
        let mut actions = Vec::new();
        for i in 0..self.peers.len() {
            let peer = self.peers.id_at(i);
            let improving: Vec<Prefix> = changed
                .iter()
                .copied()
                .filter(|&p| self.improves(peer, p))
                .collect();
            if improving.is_empty() {
                continue;
            }
            let sess = self.peers.get_mut(peer).expect("peer exists");
            let mut cancelled = false;
            match self.cfg.mrai_scope {
                MraiScope::PerPeer => {
                    if sess.timer.is_running() {
                        sess.timer.cancel();
                        cancelled = true;
                    }
                }
                MraiScope::PerDestination => {
                    for p in &improving {
                        if let Some(t) = sess.dest_timers.get_mut(p) {
                            if t.is_running() {
                                t.cancel();
                                cancelled = true;
                            }
                        }
                    }
                }
            }
            if cancelled {
                actions.extend(self.flush_peer(now, peer));
            }
        }
        actions
    }

    /// Whether what we would now send `peer` for `prefix` improves on what
    /// they last heard from us (shorter path, or a route where they hold
    /// none).
    fn improves(&self, peer: RouterId, prefix: Prefix) -> bool {
        let Some(sess) = self.peers.get(peer) else {
            return false;
        };
        // What the peer last heard: the frozen value when pending; the
        // current export otherwise (mirror invariant) — in which case
        // nothing can improve on itself.
        match (self.path_towards(peer, prefix), sess.rib_out.frozen(prefix)) {
            (Some((new, _)), Some(Some(old))) => new.len() < old.len(),
            (Some(_), Some(None)) => true,
            _ => false,
        }
    }

    /// Handles an MRAI expiry event (ignores stale generations and dead
    /// peers).
    pub fn on_mrai_expiry(
        &mut self,
        now: SimTime,
        peer: RouterId,
        prefix: Option<Prefix>,
        gen: u64,
    ) -> Vec<Action> {
        let Some(sess) = self.peers.get_mut(peer) else {
            return Vec::new();
        };
        match prefix {
            None => {
                if !sess.timer.expire(gen) {
                    return Vec::new();
                }
                self.trace_push(NodeEvent::MraiExpired { peer, prefix: None });
                self.flush_peer(now, peer)
            }
            Some(p) => {
                let live = sess
                    .dest_timers
                    .get_mut(&p)
                    .map(|t| t.expire(gen))
                    .unwrap_or(false);
                if !live {
                    return Vec::new();
                }
                self.trace_push(NodeEvent::MraiExpired {
                    peer,
                    prefix: Some(p),
                });
                self.flush_peer(now, peer)
            }
        }
    }

    /// Handles the (re-)establishment of a session with `peer`: registers
    /// it and schedules the initial table exchange — every Loc-RIB route is
    /// marked dirty towards the new peer, exactly like a real BGP session
    /// coming up (RFC 1771 §3: "initially, the entire BGP routing table is
    /// exchanged"). Export filters (split horizon, policies) apply as
    /// usual when the routes are emitted.
    pub fn on_peer_up(
        &mut self,
        now: SimTime,
        peer: RouterId,
        ibgp: bool,
        rel: Option<Relationship>,
    ) -> Vec<Action> {
        self.register_peer(peer, PeerSession::new(ibgp, rel));
        let prefixes: Vec<Prefix> = self.loc_rib.iter().map(|(p, _)| p).collect();
        let sess = self.peers.get_mut(peer).expect("just inserted");
        for p in prefixes {
            // The new peer has heard nothing yet: every Loc-RIB prefix is
            // pending with a frozen "nothing advertised" marker.
            sess.rib_out.freeze_with(p, || None);
        }
        self.flush_peer(now, peer)
    }

    /// Handles the loss of the session to `peer` (link or router failure).
    ///
    /// All routes learned from the peer must be revalidated; one
    /// [`WorkItem::ImplicitWithdraw`] per affected prefix is queued so the
    /// cleanup costs processing time, exactly like received withdrawals
    /// would.
    pub fn on_peer_down(&mut self, now: SimTime, peer: RouterId) -> Vec<Action> {
        if self.peers.remove(peer).is_none() {
            return Vec::new();
        }
        // Damping state dies with the session. An in-flight reuse timer
        // becomes stale via the generation check in `on_reuse_expiry`:
        // generations come from `damp_next_gen`, which survives the
        // teardown, so re-created state can never reuse one.
        self.damp.retain(|&(p, _), _| p != peer);
        self.suppressed_routes.retain(|&(p, _), _| p != peer);
        let stale_before = self.queue.deleted_stale();
        for prefix in self.rib_in.prefixes_via(peer) {
            self.queue.push(WorkItem::ImplicitWithdraw { peer, prefix });
        }
        self.trace_stale(stale_before);
        let actions = self.maybe_start_processing(now);
        self.trace_depth();
        actions
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Applies one work item to the RIBs. Returns a damping action to
    /// execute (a reuse-timer start) if the update newly suppressed a
    /// route.
    fn apply_item(&mut self, now: SimTime, item: WorkItem) -> Option<Action> {
        match item {
            WorkItem::Update { from, msg } => {
                if !self.peers.contains(from) {
                    // Session died while the update sat in the queue.
                    return None;
                }
                let prefix = msg.prefix;
                // Translate the wire update into the new route state
                // (`None` = withdrawn); looped paths count as withdrawals.
                let new_entry: Option<RouteEntry> = match msg.action {
                    UpdateAction::Advertise(path) if !path.contains(self.as_id) => {
                        let sess = self.peers.get(from).expect("presence checked above");
                        let rank = match self.cfg.policy {
                            PolicyMode::None => 0,
                            PolicyMode::GaoRexford => {
                                if sess.ibgp {
                                    // LOCAL_PREF carried over iBGP.
                                    msg.local_pref.unwrap_or(RANK_PEER)
                                } else {
                                    sess.rel.map(Relationship::rank).unwrap_or(RANK_PEER)
                                }
                            }
                        };
                        Some(RouteEntry {
                            path,
                            ibgp: sess.ibgp,
                            rank,
                        })
                    }
                    _ => None,
                };
                let ibgp = self.peers.get(from).expect("presence checked above").ibgp;
                if let Some(damping) = self.cfg.damping.filter(|_| !ibgp) {
                    let key = (from, prefix);
                    let state = self.damp.entry(key).or_default();
                    if state.is_suppressed() {
                        // Track the latest state; apply it at release time.
                        self.suppressed_routes.insert(key, new_entry);
                        state.record_flap(now, &damping);
                        return None;
                    }
                    let existing = self.rib_in.get(prefix, from);
                    let changed = match (&existing, &new_entry) {
                        (None, None) => false,
                        (Some(old), Some(new)) => old.path != new.path,
                        _ => true,
                    };
                    // A change is a flap once the route has history (a
                    // prior route or a prior penalty); the very first
                    // announcement is free.
                    let has_history = existing.is_some() || state.penalty_at(now, &damping) > 0.0;
                    if changed && has_history && state.record_flap(now, &damping) {
                        // Newly suppressed: pull the route out of the
                        // decision process and park the new state.
                        let delay = state.reuse_delay(now, &damping);
                        self.rib_in.remove(prefix, from);
                        self.suppressed_routes.insert(key, new_entry);
                        // Stamp the suppression from the node-wide counter
                        // (not the per-state one `record_flap` bumped):
                        // state dropped by a session teardown and
                        // re-created later must never repeat a generation
                        // a still-scheduled reuse timer carries.
                        self.damp_next_gen += 1;
                        let gen = self.damp_next_gen;
                        self.damp
                            .get_mut(&key)
                            .expect("entry created above")
                            .set_gen(gen);
                        return Some(Action::StartReuse {
                            peer: from,
                            prefix,
                            delay,
                            gen,
                        });
                    }
                }
                match new_entry {
                    Some(entry) => {
                        self.rib_in.insert(prefix, from, entry);
                    }
                    None => {
                        self.rib_in.remove(prefix, from);
                    }
                }
                None
            }
            WorkItem::ImplicitWithdraw { peer, prefix } => {
                self.rib_in.remove(prefix, peer);
                None
            }
        }
    }

    /// Handles a damping reuse-timer expiry: releases the route if the
    /// penalty has decayed (re-arming otherwise) and re-runs the decision
    /// process with the parked state.
    pub fn on_reuse_expiry(
        &mut self,
        now: SimTime,
        peer: RouterId,
        prefix: Prefix,
        gen: u64,
    ) -> Vec<Action> {
        let Some(damping) = self.cfg.damping else {
            return Vec::new();
        };
        let key = (peer, prefix);
        let Some(state) = self.damp.get_mut(&key) else {
            return Vec::new();
        };
        match state.try_release(now, gen, &damping, false) {
            None => Vec::new(),
            Some(false) => {
                // Not decayed yet: re-arm, forcing release at the cap.
                let delay = state.reuse_delay(now, &damping);
                if delay >= damping.max_suppress {
                    let released = state.try_release(now, gen, &damping, true);
                    debug_assert_eq!(released, Some(true));
                    self.finish_release(now, key)
                } else {
                    vec![Action::StartReuse {
                        peer,
                        prefix,
                        delay,
                        gen,
                    }]
                }
            }
            Some(true) => self.finish_release(now, key),
        }
    }

    fn finish_release(&mut self, now: SimTime, key: (RouterId, Prefix)) -> Vec<Action> {
        let (peer, prefix) = key;
        let parked = self.suppressed_routes.remove(&key).flatten();
        if self.peers.contains(peer) {
            match parked {
                Some(entry) => {
                    self.rib_in.insert(prefix, peer, entry);
                }
                None => {
                    self.rib_in.remove(prefix, peer);
                }
            }
        }
        let mut actions = Vec::new();
        if self.run_decision(prefix, &[peer]) {
            actions.extend(self.flush_all(now));
        }
        actions
    }

    /// Re-runs the decision process for `prefix`; returns whether the best
    /// route changed. `changed` lists every peer whose Adj-RIB-In entry
    /// for `prefix` may have changed since the previous decision — the
    /// incremental fast path compares just those candidates against the
    /// installed best, falling back to a full candidate rescan only when
    /// the installed best itself was withdrawn or worsened.
    fn run_decision(&mut self, prefix: Prefix, changed: &[RouterId]) -> bool {
        self.stats.decision_runs += 1;
        if self.own_prefixes.contains(&prefix) {
            // Locally originated: the zero-hop local route always wins.
            self.trace_push(NodeEvent::Decision {
                prefix,
                full_rescan: false,
            });
            return false;
        }
        let (new, full_rescan) =
            match select_incremental(prefix, &self.rib_in, self.loc_rib.get(prefix), changed) {
                Incremental::Resolved(sel) => {
                    self.stats.fast_decisions += 1;
                    (sel, false)
                }
                Incremental::NeedsRescan => {
                    self.stats.full_rescans += 1;
                    (select_best(prefix, &self.rib_in), true)
                }
            };
        self.trace_push(NodeEvent::Decision {
            prefix,
            full_rescan,
        });
        let old = self.loc_rib.get(prefix);
        if new.as_ref() == old {
            return false;
        }
        // The best route is about to change: break the Adj-RIB-Out mirror
        // towards every peer *before* the install, so the frozen values
        // capture what each peer actually last heard.
        self.freeze_out_all(prefix);
        let path_len = new.as_ref().map(|sel| sel.path.len() as u32);
        match new {
            Some(sel) => {
                self.loc_rib.install(prefix, sel);
            }
            None => {
                self.loc_rib.remove(prefix);
            }
        }
        self.stats.best_changes += 1;
        self.trace_push(NodeEvent::BestChanged { prefix, path_len });
        true
    }

    /// Marks `prefix` pending towards every peer, freezing each session's
    /// current export — by the mirror invariant, exactly what that peer
    /// last heard — unless an earlier unflushed change already froze it
    /// (the first break since the last flush wins). MUST run before the
    /// Loc-RIB change that makes the old export stale.
    fn freeze_out_all(&mut self, prefix: Prefix) {
        let (loc_rib, cfg) = (&self.loc_rib, &self.cfg);
        let (cache, as_id) = (&self.prepend_cache, self.as_id);
        for (peer, sess) in self.peers.iter_mut() {
            let (ibgp, rel) = (sess.ibgp, sess.rel);
            sess.rib_out.freeze_with(prefix, || {
                BgpNode::export_route(loc_rib, cfg, cache, as_id, ibgp, rel, peer, prefix)
                    .map(|(path, _)| path)
            });
        }
    }

    fn maybe_start_processing(&mut self, _now: SimTime) -> Vec<Action> {
        if self.is_busy() {
            return Vec::new();
        }
        let stale_before = self.queue.deleted_stale();
        let batch = self.queue.pop_batch();
        self.trace_stale(stale_before);
        if batch.is_empty() {
            return Vec::new();
        }
        let duration: SimDuration = batch
            .iter()
            .map(|_| uniform_duration(self.cfg.proc_min, self.cfg.proc_max, &mut self.rng))
            .sum();
        self.stats.busy_time += duration;
        if let Some(ctrl) = &mut self.dyn_ctrl {
            ctrl.note_busy(duration);
        }
        self.in_service = batch;
        vec![Action::StartProcessing { duration }]
    }

    fn flush_all(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        // Index loop: flushing never adds or removes peers, and this runs
        // after every service batch — no per-call peer-id Vec.
        for i in 0..self.peers.len() {
            let peer = self.peers.id_at(i);
            actions.extend(self.flush_peer(now, peer));
        }
        actions
    }

    /// Sends whatever the MRAI currently permits to `peer`.
    fn flush_peer(&mut self, now: SimTime, peer: RouterId) -> Vec<Action> {
        match self.cfg.mrai_scope {
            MraiScope::PerPeer => self.flush_peer_scoped(now, peer),
            MraiScope::PerDestination => self.flush_per_destination(now, peer),
        }
    }

    fn flush_peer_scoped(&mut self, now: SimTime, peer: RouterId) -> Vec<Action> {
        {
            let Some(sess) = self.peers.get(peer) else {
                return Vec::new();
            };
            if sess.timer.is_running() || sess.rib_out.is_clean() {
                return Vec::new();
            }
        }
        let pending = {
            let sess = self.peers.get_mut(peer).expect("checked above");
            // Take the pending set whole: the map iterates ascending by
            // prefix, the order the old dirty set produced. Draining it
            // re-establishes the mirror — sending re-syncs the peer.
            sess.rib_out.take_pending()
        };
        let (mut actions, sent_advert, sent_any) = self.emit_updates(peer, pending);
        let start_timer = sent_advert || (self.cfg.withdrawal_rate_limiting && sent_any);
        if start_timer {
            if let Some(delay) = self.next_mrai_interval(now, peer) {
                let sess = self.peers.get_mut(peer).expect("peer exists");
                let gen = sess.timer.start();
                self.stats.mrai_starts += 1;
                self.trace_push(NodeEvent::MraiStarted {
                    peer,
                    prefix: None,
                    delay,
                });
                actions.push(Action::StartMrai {
                    peer,
                    prefix: None,
                    delay,
                    gen,
                });
            }
        }
        actions
    }

    fn flush_per_destination(&mut self, now: SimTime, peer: RouterId) -> Vec<Action> {
        let Some(sess) = self.peers.get(peer) else {
            return Vec::new();
        };
        // Only pending prefixes whose own timer is idle may be sent now.
        let ready: Vec<Prefix> = sess
            .rib_out
            .pending()
            .filter(|p| {
                !sess
                    .dest_timers
                    .get(p)
                    .map(MraiTimer::is_running)
                    .unwrap_or(false)
            })
            .collect();
        if ready.is_empty() {
            return Vec::new();
        }
        let mut actions = Vec::new();
        for p in ready {
            let frozen = {
                let sess = self.peers.get_mut(peer).expect("checked above");
                sess.rib_out.take(p).expect("listed as pending")
            };
            let (mut acts, sent_advert, sent_any) = self.emit_updates(peer, [(p, frozen)]);
            actions.append(&mut acts);
            let start_timer = sent_advert || (self.cfg.withdrawal_rate_limiting && sent_any);
            if start_timer {
                if let Some(delay) = self.next_mrai_interval(now, peer) {
                    let sess = self.peers.get_mut(peer).expect("peer exists");
                    let gen = sess.dest_timers.entry(p).or_default().start();
                    self.stats.mrai_starts += 1;
                    self.trace_push(NodeEvent::MraiStarted {
                        peer,
                        prefix: Some(p),
                        delay,
                    });
                    actions.push(Action::StartMrai {
                        peer,
                        prefix: Some(p),
                        delay,
                        gen,
                    });
                }
            }
        }
        actions
    }

    /// Computes and records the updates for the taken pending entries
    /// (`(prefix, frozen last-advertised)`) towards `peer`. Returns
    /// `(actions, sent_advertisement, sent_anything)`.
    fn emit_updates(
        &mut self,
        peer: RouterId,
        entries: impl IntoIterator<Item = (Prefix, Option<AsPath>)>,
    ) -> (Vec<Action>, bool, bool) {
        let mut actions = Vec::new();
        let (mut sent_advert, mut sent_any) = (false, false);
        // Disjoint field borrows: the session stays mutably borrowed for
        // the whole sweep while the export is computed straight from the
        // Loc-RIB, config and prepend cache — what `path_towards` does,
        // minus two session-map lookups per prefix.
        let Some(sess) = self.peers.get_mut(peer) else {
            return (actions, sent_advert, sent_any);
        };
        let (ibgp, rel) = (sess.ibgp, sess.rel);
        let (loc_rib, cfg) = (&self.loc_rib, &self.cfg);
        let (cache, as_id) = (&self.prepend_cache, self.as_id);
        for (prefix, frozen) in entries {
            let advertised =
                BgpNode::export_route(loc_rib, cfg, cache, as_id, ibgp, rel, peer, prefix);
            #[cfg(any(test, feature = "dense-rib"))]
            assert_eq!(
                frozen.as_ref(),
                sess.shadow_out.get(prefix),
                "delta Adj-RIB-Out froze a value the dense mirror disagrees with"
            );
            match (advertised, frozen) {
                (Some((path, _)), Some(old)) if path == old => {
                    // Redundant: what we'd send equals what they have.
                }
                (Some((path, pref)), _) => {
                    #[cfg(any(test, feature = "dense-rib"))]
                    sess.shadow_out.advertise(prefix, path.clone());
                    self.stats.announcements_sent += 1;
                    sent_advert = true;
                    sent_any = true;
                    if let Some(buf) = self.trace.as_mut() {
                        buf.push(NodeEvent::Sent {
                            to: peer,
                            prefix,
                            advertise: true,
                        });
                    }
                    let msg = match pref {
                        Some(p) => UpdateMsg::advertise_with_pref(prefix, path, p),
                        None => UpdateMsg::advertise(prefix, path),
                    };
                    actions.push(Action::Send { to: peer, msg });
                }
                (None, Some(_)) => {
                    #[cfg(any(test, feature = "dense-rib"))]
                    sess.shadow_out.withdraw(prefix);
                    self.stats.withdrawals_sent += 1;
                    sent_any = true;
                    if let Some(buf) = self.trace.as_mut() {
                        buf.push(NodeEvent::Sent {
                            to: peer,
                            prefix,
                            advertise: false,
                        });
                    }
                    actions.push(Action::Send {
                        to: peer,
                        msg: UpdateMsg::withdraw(prefix),
                    });
                }
                (None, None) => {}
            }
        }
        (actions, sent_advert, sent_any)
    }

    /// The AS path this node would advertise to `peer` for `prefix`
    /// (plus the iBGP `LOCAL_PREF` to carry), or `None` if the route must
    /// be suppressed: unreachable, split horizon, iBGP no-transit, or — in
    /// policy mode — a valley-free export violation.
    fn path_towards(&self, peer: RouterId, prefix: Prefix) -> Option<(AsPath, Option<u8>)> {
        let sess = self.peers.get(peer)?;
        BgpNode::export_route(
            &self.loc_rib,
            &self.cfg,
            &self.prepend_cache,
            self.as_id,
            sess.ibgp,
            sess.rel,
            peer,
            prefix,
        )
    }

    /// The export computation behind [`BgpNode::path_towards`], taking the
    /// node fields it reads as explicit borrows so `emit_updates` can call
    /// it while holding a peer session mutably.
    #[allow(clippy::too_many_arguments)]
    fn export_route(
        loc_rib: &LocRib,
        cfg: &NodeConfig,
        cache: &PrependCache,
        as_id: AsId,
        ibgp: bool,
        rel: Option<Relationship>,
        peer: RouterId,
        prefix: Prefix,
    ) -> Option<(AsPath, Option<u8>)> {
        let best = loc_rib.get(prefix)?;
        if best.next_hop == NextHop::Peer(peer) {
            // Split horizon: never advertise a route back to its source.
            return None;
        }
        if ibgp {
            if best.via_ibgp && !cfg.route_reflector {
                // Regular iBGP speakers do not re-advertise iBGP-learned
                // routes (full-mesh rule); route reflectors do (RFC 4456 —
                // split horizon above already keeps it away from the
                // advertising client).
                return None;
            }
            let pref = match cfg.policy {
                PolicyMode::None => None,
                PolicyMode::GaoRexford => Some(best.rank),
            };
            Some((best.path.clone(), pref))
        } else {
            if cfg.policy == PolicyMode::GaoRexford {
                let to = rel.unwrap_or(Relationship::Peer);
                if !may_export(best.rank, to) {
                    return None;
                }
            }
            Some((BgpNode::prepended_in(cache, as_id, &best.path), None))
        }
    }

    /// `path.prepend(as_id)`, memoized per backing allocation.
    ///
    /// A best path is exported to every eBGP peer and re-exported on
    /// every MRAI flush; keying on the parent's storage address makes all
    /// of those hit one cached prepend instead of allocating each time.
    /// The cached parent clone pins the allocation, so a live key can
    /// never be recycled by a different path.
    fn prepended_in(cache: &PrependCache, as_id: AsId, path: &AsPath) -> AsPath {
        let mut cache = cache.borrow_mut();
        if let Some((parent, child)) = cache.get(&path.storage_key()) {
            debug_assert!(parent.ptr_eq(path));
            return child.clone();
        }
        let child = path.prepend(as_id);
        if cache.len() >= 1024 {
            // Bound the pinned allocations; the working set (current best
            // paths) refills quickly.
            cache.clear();
        }
        cache.insert(path.storage_key(), (path.clone(), child.clone()));
        child
    }

    /// The jittered MRAI interval for the next timer towards `peer`, or
    /// `None` if the effective MRAI is zero (no pacing).
    fn next_mrai_interval(&mut self, now: SimTime, peer: RouterId) -> Option<SimDuration> {
        let ibgp = self.peers.get(peer)?.ibgp;
        let base = if ibgp {
            self.cfg.ibgp_mrai
        } else {
            match &self.cfg.mrai {
                MraiPolicy::Constant(d) => *d,
                MraiPolicy::Dynamic(_) => {
                    let pending = self.queue.len() + self.in_service.len();
                    let ctrl = self
                        .dyn_ctrl
                        .as_mut()
                        .expect("dynamic policy has controller");
                    let shift = ctrl.evaluate(now, pending);
                    let mrai = ctrl.current_mrai();
                    if let Some(s) = shift {
                        self.trace_push(NodeEvent::MraiLevel {
                            from: s.from,
                            to: s.to,
                            reading: s.reading,
                        });
                    }
                    mrai
                }
            }
        };
        if base.is_zero() {
            return None;
        }
        Some(if self.cfg.jitter {
            jittered(base, &mut self.rng)
        } else {
            base
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynmrai::{Detector, DynamicMraiConfig};
    use crate::queue::QueueDiscipline;
    use rand::SeedableRng;

    fn rid(i: u32) -> RouterId {
        RouterId::new(i)
    }

    fn asn(i: u32) -> AsId {
        AsId::new(i)
    }

    fn pfx(i: u32) -> Prefix {
        Prefix::new(i)
    }

    fn node(id: u32, cfg: NodeConfig) -> BgpNode {
        BgpNode::new(
            rid(id),
            asn(id),
            cfg,
            SmallRng::seed_from_u64(1000 + u64::from(id)),
        )
    }

    fn fast_cfg() -> NodeConfig {
        NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .build()
    }

    fn sends(actions: &[Action]) -> Vec<(RouterId, UpdateMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    /// Delivers the expiry event for every MRAI timer started in `acts`.
    fn fire_mrai(n: &mut BgpNode, t: SimTime, acts: &[Action]) -> Vec<Action> {
        let mut out = Vec::new();
        for a in acts {
            if let Action::StartMrai {
                peer, prefix, gen, ..
            } = a
            {
                out.extend(n.on_mrai_expiry(t, *peer, *prefix, *gen));
            }
        }
        out
    }

    /// Runs one update through a node: deliver, then complete processing.
    fn process_one(n: &mut BgpNode, t: SimTime, from: u32, msg: UpdateMsg) -> Vec<Action> {
        let acts = n.on_update(t, rid(from), msg);
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::StartProcessing { .. })),
            "expected processing to start"
        );
        n.on_proc_done(t + SimDuration::from_millis(30))
    }

    #[test]
    fn originate_advertises_with_prepend_and_starts_timer() {
        let mut n = node(0, fast_cfg());
        n.add_peer(rid(1), false);
        let acts = n.originate(SimTime::ZERO, pfx(0));
        let s = sends(&acts);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, rid(1));
        match &s[0].1.action {
            UpdateAction::Advertise(p) => assert_eq!(p.hops(), &[asn(0)]),
            other => panic!("expected advertise, got {other:?}"),
        }
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::StartMrai { peer, prefix: None, delay, .. }
                if *peer == rid(1) && *delay == SimDuration::from_millis(500)
        )));
        assert!(n.loc_rib().get(pfx(0)).is_some());
    }

    #[test]
    fn update_propagates_with_split_horizon() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let s = sends(&acts);
        // Only to peer 2; split horizon suppresses the echo to peer 0.
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, rid(2));
        match &s[0].1.action {
            UpdateAction::Advertise(p) => assert_eq!(p.hops(), &[asn(1), asn(0)]),
            other => panic!("expected advertise, got {other:?}"),
        }
    }

    #[test]
    fn busy_node_queues_updates() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        let a1 = n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        assert_eq!(a1.len(), 1, "first update starts processing");
        let a2 = n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(1), AsPath::from_hops([asn(0)])),
        );
        assert!(a2.is_empty(), "server busy; second update just queues");
        assert_eq!(n.queue_len(), 1);
        assert!(n.is_busy());
    }

    #[test]
    fn withdrawal_falls_back_to_alternate_path() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        n.add_peer(rid(3), false);
        // Primary (short) via peer 0, backup (long) via peer 2.
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(0)])),
        );
        fire_mrai(&mut n, SimTime::from_secs(1), &acts);
        process_one(
            &mut n,
            SimTime::from_secs(10),
            2,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(2), asn(5), asn(0)])),
        );
        assert_eq!(
            n.loc_rib().get(pfx(9)).unwrap().next_hop,
            NextHop::Peer(rid(0))
        );
        // Withdraw the primary: best flips to the backup.
        let acts = process_one(
            &mut n,
            SimTime::from_secs(20),
            0,
            UpdateMsg::withdraw(pfx(9)),
        );
        assert_eq!(
            n.loc_rib().get(pfx(9)).unwrap().next_hop,
            NextHop::Peer(rid(2))
        );
        // Peer 3 must hear the new (longer) path.
        let to3: Vec<_> = sends(&acts)
            .into_iter()
            .filter(|(to, _)| *to == rid(3))
            .collect();
        assert_eq!(to3.len(), 1);
        match &to3[0].1.action {
            UpdateAction::Advertise(p) => assert_eq!(p.len(), 4),
            other => panic!("expected advertise, got {other:?}"),
        }
    }

    #[test]
    fn looped_path_is_rejected() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(1), asn(9)])),
        );
        assert!(
            n.loc_rib().get(pfx(0)).is_none(),
            "looped route must not be used"
        );
        assert!(sends(&acts).is_empty());
    }

    #[test]
    fn mrai_gates_second_advertisement_until_expiry() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        // First route: advertised immediately; timer starts for peer 2.
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let gen = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai { peer, gen, .. } if *peer == rid(2) => Some(*gen),
                _ => None,
            })
            .expect("timer started for peer 2");
        // Route changes while the timer runs: nothing sent yet.
        let acts = process_one(
            &mut n,
            SimTime::from_millis(100),
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(7)])),
        );
        assert!(sends(&acts).is_empty(), "gated by the running MRAI timer");
        // Expiry: the pending change goes out and the timer restarts.
        let acts = n.on_mrai_expiry(SimTime::from_millis(600), rid(2), None, gen);
        let s = sends(&acts);
        assert_eq!(s.len(), 1);
        match &s[0].1.action {
            UpdateAction::Advertise(p) => assert_eq!(p.len(), 3),
            other => panic!("expected advertise, got {other:?}"),
        }
        assert!(acts.iter().any(|a| matches!(a, Action::StartMrai { .. })));
    }

    #[test]
    fn stale_mrai_expiry_is_ignored() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let gen = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai { peer, gen, .. } if *peer == rid(2) => Some(*gen),
                _ => None,
            })
            .unwrap();
        assert!(n
            .on_mrai_expiry(SimTime::from_secs(1), rid(2), None, gen + 7)
            .is_empty());
        // Real expiry with empty dirty set: nothing sent, timer not restarted.
        let acts = n.on_mrai_expiry(SimTime::from_secs(1), rid(2), None, gen);
        assert!(acts.is_empty());
    }

    #[test]
    fn redundant_advertisement_suppressed_after_flap() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let gen = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai { peer, gen, .. } if *peer == rid(2) => Some(*gen),
                _ => None,
            })
            .unwrap();
        // Flap A -> B -> A while the timer runs.
        process_one(
            &mut n,
            SimTime::from_millis(50),
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(9)])),
        );
        process_one(
            &mut n,
            SimTime::from_millis(100),
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let acts = n.on_mrai_expiry(SimTime::from_millis(600), rid(2), None, gen);
        assert!(
            sends(&acts).is_empty(),
            "net-zero flap must not generate an update"
        );
    }

    #[test]
    fn peer_down_queues_implicit_withdraws_and_propagates() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        fire_mrai(&mut n, SimTime::from_millis(600), &acts);
        let acts = process_one(
            &mut n,
            SimTime::from_secs(1),
            0,
            UpdateMsg::advertise(pfx(5), AsPath::from_hops([asn(0), asn(5)])),
        );
        fire_mrai(&mut n, SimTime::from_secs(2), &acts);
        // Session to peer 0 dies: two implicit withdraws queue up.
        let acts = n.on_peer_down(SimTime::from_secs(10), rid(0));
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::StartProcessing { .. })));
        let acts = n.on_proc_done(SimTime::from_secs(11));
        // Batched per prefix under FIFO: first prefix processed; run to
        // completion for the second if still queued.
        let mut all = sends(&acts);
        if n.is_busy() {
            all.extend(sends(&n.on_proc_done(SimTime::from_secs(12))));
        }
        let withdrawn: BTreeSet<Prefix> = all
            .iter()
            .filter(|(to, m)| *to == rid(2) && !m.action.is_advertise())
            .map(|(_, m)| m.prefix)
            .collect();
        assert_eq!(withdrawn, BTreeSet::from([pfx(0), pfx(5)]));
        assert!(n.loc_rib().get(pfx(0)).is_none());
        assert!(n.loc_rib().get(pfx(5)).is_none());
    }

    #[test]
    fn update_from_dead_peer_is_dropped() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.on_peer_down(SimTime::ZERO, rid(0));
        let acts = n.on_update(
            SimTime::from_millis(1),
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        assert!(acts.is_empty());
        assert_eq!(n.queue_len(), 0);
    }

    #[test]
    fn withdrawal_only_send_does_not_start_timer_without_wrate() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        // Let peer 2's timer expire with nothing pending.
        fire_mrai(&mut n, SimTime::from_millis(600), &acts);
        // Now a pure withdrawal: no alternate route exists.
        let acts = process_one(
            &mut n,
            SimTime::from_secs(5),
            0,
            UpdateMsg::withdraw(pfx(0)),
        );
        let withdraws: Vec<_> = sends(&acts)
            .into_iter()
            .filter(|(_, m)| !m.action.is_advertise())
            .collect();
        assert_eq!(withdraws.len(), 1);
        let mrai_starts: Vec<_> = acts
            .iter()
            .filter(|a| matches!(a, Action::StartMrai { .. }))
            .collect();
        assert!(
            mrai_starts.is_empty(),
            "withdrawal-only send must not start MRAI"
        );
    }

    #[test]
    fn wrate_starts_timer_on_withdrawal() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .withdrawal_rate_limiting(true)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let gen = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai { peer, gen, .. } if *peer == rid(2) => Some(*gen),
                _ => None,
            })
            .unwrap();
        n.on_mrai_expiry(SimTime::from_secs(1), rid(2), None, gen);
        let acts = process_one(
            &mut n,
            SimTime::from_secs(5),
            0,
            UpdateMsg::withdraw(pfx(0)),
        );
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::StartMrai { peer, .. } if *peer == rid(2))),
            "WRATE must rate-limit withdrawals too"
        );
    }

    #[test]
    fn ibgp_semantics() {
        // Node 1 (AS 1) with iBGP peer 10 (same AS) and eBGP peer 0 (AS 0).
        let mut n = BgpNode::new(rid(1), asn(1), fast_cfg(), SmallRng::seed_from_u64(5));
        n.add_peer(rid(0), false);
        n.add_peer(rid(10), true);
        // eBGP-learned route goes to the iBGP peer unprepended.
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let to_ibgp: Vec<_> = sends(&acts)
            .into_iter()
            .filter(|(to, _)| *to == rid(10))
            .collect();
        assert_eq!(to_ibgp.len(), 1);
        match &to_ibgp[0].1.action {
            UpdateAction::Advertise(p) => {
                assert_eq!(p.hops(), &[asn(0)], "no prepend over iBGP");
            }
            other => panic!("expected advertise, got {other:?}"),
        }
        // iBGP-learned route is NOT re-advertised to another iBGP peer.
        let mut n2 = BgpNode::new(rid(2), asn(1), fast_cfg(), SmallRng::seed_from_u64(6));
        n2.add_peer(rid(10), true);
        n2.add_peer(rid(11), true);
        n2.add_peer(rid(5), false);
        let acts = process_one(
            &mut n2,
            SimTime::ZERO,
            10,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let s = sends(&acts);
        assert!(
            s.iter().all(|(to, _)| *to != rid(11)),
            "iBGP routes must not transit to iBGP peers"
        );
        // ... but it IS advertised to the eBGP peer, with prepend.
        let to_ebgp: Vec<_> = s.iter().filter(|(to, _)| *to == rid(5)).collect();
        assert_eq!(to_ebgp.len(), 1);
        match &to_ebgp[0].1.action {
            UpdateAction::Advertise(p) => assert_eq!(p.hops(), &[asn(1), asn(0)]),
            other => panic!("expected advertise, got {other:?}"),
        }
    }

    #[test]
    fn ibgp_mrai_zero_means_unpaced() {
        let mut n = BgpNode::new(rid(1), asn(1), fast_cfg(), SmallRng::seed_from_u64(5));
        n.add_peer(rid(10), true);
        n.add_peer(rid(0), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, Action::StartMrai { peer, .. } if *peer == rid(10))),
            "zero iBGP MRAI must not start timers"
        );
    }

    #[test]
    fn per_destination_scope_runs_independent_timers() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .mrai_scope(MraiScope::PerDestination)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        // Prefix 0 advertised: starts p0's timer towards peer 2.
        process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        // Prefix 1 changes while p0's timer runs: p1 goes out immediately.
        let acts = process_one(
            &mut n,
            SimTime::from_millis(100),
            0,
            UpdateMsg::advertise(pfx(1), AsPath::from_hops([asn(0), asn(3)])),
        );
        let s: Vec<_> = sends(&acts)
            .into_iter()
            .filter(|(to, _)| *to == rid(2))
            .collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1.prefix, pfx(1), "independent destination not gated");
        // But a p0 change IS gated.
        let acts = process_one(
            &mut n,
            SimTime::from_millis(200),
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(4)])),
        );
        assert!(
            sends(&acts)
                .iter()
                .all(|(to, m)| !(*to == rid(2) && m.prefix == pfx(0))),
            "same destination must be gated by its timer"
        );
    }

    #[test]
    fn dynamic_mrai_rises_under_backlog() {
        let cfg = NodeConfig::builder()
            .mrai_dynamic(DynamicMraiConfig::paper_default())
            .jitter(false)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        assert_eq!(n.dynamic_level(), Some(0));
        // Pile up a large backlog while the server is busy.
        n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        for i in 1..60 {
            n.on_update(
                SimTime::ZERO,
                rid(0),
                UpdateMsg::advertise(pfx(i), AsPath::from_hops([asn(0)])),
            );
        }
        // Complete the first batch: the flush evaluates the controller with
        // ~59 pending updates (≈ 0.91 s unfinished work > 0.65 s).
        let acts = n.on_proc_done(SimTime::from_millis(20));
        assert_eq!(
            n.dynamic_level(),
            Some(1),
            "level must step up under backlog"
        );
        let delay = acts.iter().find_map(|a| match a {
            Action::StartMrai { delay, .. } => Some(*delay),
            _ => None,
        });
        assert_eq!(delay, Some(SimDuration::from_millis(1250)));
    }

    #[test]
    fn level_change_leaves_running_timers_alone() {
        // `down` = 0 pins the level once raised, so the end of the test
        // is not sensitive to how fast the backlog drains.
        let dyn_cfg = DynamicMraiConfig {
            levels: vec![
                SimDuration::from_millis(500),
                SimDuration::from_millis(1250),
            ],
            detector: Detector::UnfinishedWork {
                up: SimDuration::from_millis(650),
                down: SimDuration::ZERO,
                mean_processing: SimDuration::from_micros(15_500),
            },
        };
        let cfg = NodeConfig::builder()
            .mrai_dynamic(dyn_cfg)
            .jitter(false)
            .mrai_scope(MraiScope::PerDestination)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        // Arm p0's timer toward rid(2) at the idle level (500 ms).
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let (delay0, gen0) = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai {
                    peer,
                    prefix: Some(p),
                    delay,
                    gen,
                } if *peer == rid(2) && *p == pfx(0) => Some((*delay, *gen)),
                _ => None,
            })
            .expect("p0 timer armed");
        assert_eq!(delay0, SimDuration::from_millis(500));
        // Pile a backlog (other destinations, plus one p0 change) while
        // p0's timer runs. The first completion starts p1's timer; that
        // start evaluates the controller with ~60 pending updates
        // (≈ 0.93 s unfinished work > 0.65 s) and raises the level.
        for i in 1..60 {
            n.on_update(
                SimTime::from_millis(40),
                rid(0),
                UpdateMsg::advertise(pfx(i), AsPath::from_hops([asn(0)])),
            );
        }
        n.on_update(
            SimTime::from_millis(41),
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(9)])),
        );
        // Drain the whole backlog, collecting every action.
        let mut acts = Vec::new();
        let mut t = SimTime::from_millis(80);
        loop {
            let batch = n.on_proc_done(t);
            let more = batch
                .iter()
                .any(|a| matches!(a, Action::StartProcessing { .. }));
            acts.extend(batch);
            if !more {
                break;
            }
            t += SimDuration::from_millis(1);
        }
        assert_eq!(n.dynamic_level(), Some(1), "backlog must raise the level");
        // The level change never touched p0's running timer: no re-arm,
        // and the gated p0 change stayed queued.
        assert!(
            acts.iter().all(|a| !matches!(
                a,
                Action::StartMrai { peer, prefix: Some(p), .. }
                    if *peer == rid(2) && *p == pfx(0)
            )),
            "a level change must not re-arm a running timer"
        );
        // The original generation expires on its original 500 ms
        // schedule; the pending p0 change flushes, and only this restart
        // picks up the raised level.
        let acts = n.on_mrai_expiry(SimTime::from_millis(530), rid(2), Some(pfx(0)), gen0);
        assert!(
            sends(&acts)
                .iter()
                .any(|(to, m)| *to == rid(2) && m.prefix == pfx(0)),
            "gated p0 change flushes at the original expiry time"
        );
        let delay1 = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai {
                    peer,
                    prefix: Some(p),
                    delay,
                    ..
                } if *peer == rid(2) && *p == pfx(0) => Some(*delay),
                _ => None,
            })
            .expect("timer restarts at expiry");
        assert_eq!(
            delay1,
            SimDuration::from_millis(1250),
            "the raised level applies only from the restart"
        );
    }

    #[test]
    fn batched_queue_deletes_stale_and_applies_newest() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .queue(QueueDiscipline::Batched)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        // While busy, three more for the same prefix from the same peer.
        n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(2)])),
        );
        n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(3)])),
        );
        n.on_update(
            SimTime::ZERO,
            rid(0),
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(4)])),
        );
        // First completion applies msg 1 and starts the next batch, which
        // collapses the remaining three to the newest one.
        n.on_proc_done(SimTime::from_millis(20));
        assert_eq!(n.stale_deleted(), 2);
        n.on_proc_done(SimTime::from_millis(40));
        let best = n.loc_rib().get(pfx(0)).expect("route installed");
        assert_eq!(best.path.hops(), &[asn(0), asn(4)], "newest update wins");
    }

    #[test]
    fn jitter_reduces_mrai_within_band() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_secs(30))
            .jitter(true)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let delay = acts
            .iter()
            .find_map(|a| match a {
                Action::StartMrai { delay, .. } => Some(*delay),
                _ => None,
            })
            .expect("timer started");
        let base = SimDuration::from_secs(30);
        assert!(delay <= base && delay >= base.mul_f64(0.75));
        assert_ne!(
            delay, base,
            "jitter should almost surely not be exactly base"
        );
    }

    #[test]
    fn expedite_cancels_timer_for_improvements() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .expedite_improvements(true)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        // Long route advertised; timer starts towards peer 2.
        process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(8), asn(9)])),
        );
        // A shorter route arrives while the timer runs: with expedite on,
        // it must go out immediately.
        let acts = process_one(
            &mut n,
            SimTime::from_millis(100),
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let to2: Vec<_> = sends(&acts)
            .into_iter()
            .filter(|(to, _)| *to == rid(2))
            .collect();
        assert_eq!(to2.len(), 1, "improvement must be expedited past the MRAI");
        match &to2[0].1.action {
            UpdateAction::Advertise(p) => assert_eq!(p.len(), 2),
            other => panic!("expected advertise, got {other:?}"),
        }
    }

    #[test]
    fn expedite_does_not_bypass_mrai_for_worsening() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .expedite_improvements(true)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        // A *longer* replacement must still wait for the timer.
        let acts = process_one(
            &mut n,
            SimTime::from_millis(100),
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(8)])),
        );
        assert!(
            sends(&acts).iter().all(|(to, _)| *to != rid(2)),
            "worsening change must remain MRAI-gated"
        );
    }

    #[test]
    fn set_constant_mrai_switches_policy() {
        let cfg = NodeConfig::builder()
            .mrai_dynamic(DynamicMraiConfig::paper_default())
            .jitter(false)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        assert_eq!(n.dynamic_level(), Some(0));
        n.set_constant_mrai(SimDuration::from_millis(3500));
        assert_eq!(n.dynamic_level(), None);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let delay = acts.iter().find_map(|a| match a {
            Action::StartMrai { delay, .. } => Some(*delay),
            _ => None,
        });
        assert_eq!(delay, Some(SimDuration::from_millis(3500)));
    }

    #[test]
    fn reset_stats_clears_queue_counters() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .queue(QueueDiscipline::Batched)
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        for i in 0..4 {
            n.on_update(
                SimTime::ZERO,
                rid(0),
                UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0), asn(10 + i)])),
            );
        }
        n.on_proc_done(SimTime::from_millis(20));
        assert!(n.stale_deleted() > 0);
        assert!(n.queue_peak() > 0);
        n.reset_stats();
        assert_eq!(n.stale_deleted(), 0);
        assert_eq!(n.queue_peak(), n.queue_len());
    }

    #[test]
    fn policy_prefers_customer_over_shorter_provider_route() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .policy(PolicyMode::GaoRexford)
            .build();
        let mut n = node(1, cfg);
        n.add_peer_with_relationship(rid(0), false, Relationship::Provider);
        n.add_peer_with_relationship(rid(2), false, Relationship::Customer);
        // Short route via the provider...
        process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(9)])),
        );
        assert_eq!(
            n.loc_rib().get(pfx(9)).unwrap().next_hop,
            NextHop::Peer(rid(0))
        );
        // ...loses to a longer route via the customer.
        process_one(
            &mut n,
            SimTime::from_secs(1),
            2,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(2), asn(5), asn(9)])),
        );
        let best = n.loc_rib().get(pfx(9)).unwrap();
        assert_eq!(best.next_hop, NextHop::Peer(rid(2)));
        assert_eq!(best.rank, 0, "customer routes rank 0");
    }

    #[test]
    fn policy_export_is_valley_free() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .policy(PolicyMode::GaoRexford)
            .build();
        let mut n = node(1, cfg);
        n.add_peer_with_relationship(rid(0), false, Relationship::Provider);
        n.add_peer_with_relationship(rid(2), false, Relationship::Peer);
        n.add_peer_with_relationship(rid(3), false, Relationship::Customer);
        // A provider-learned route must go to the customer ONLY.
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(9)])),
        );
        let targets: Vec<RouterId> = sends(&acts).into_iter().map(|(to, _)| to).collect();
        assert_eq!(
            targets,
            vec![rid(3)],
            "provider route leaks past the customer"
        );
    }

    #[test]
    fn policy_customer_route_exported_everywhere() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .policy(PolicyMode::GaoRexford)
            .build();
        let mut n = node(1, cfg);
        n.add_peer_with_relationship(rid(0), false, Relationship::Customer);
        n.add_peer_with_relationship(rid(2), false, Relationship::Peer);
        n.add_peer_with_relationship(rid(3), false, Relationship::Provider);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(9)])),
        );
        let mut targets: Vec<RouterId> = sends(&acts).into_iter().map(|(to, _)| to).collect();
        targets.sort();
        assert_eq!(
            targets,
            vec![rid(2), rid(3)],
            "customer routes export to all"
        );
    }

    #[test]
    fn policy_local_pref_carried_over_ibgp() {
        // Border router in AS 1 learns from a provider; its iBGP message
        // must carry rank 2 so interior routers rank it correctly.
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .policy(PolicyMode::GaoRexford)
            .build();
        let mut border = BgpNode::new(rid(1), asn(1), cfg.clone(), SmallRng::seed_from_u64(7));
        border.add_peer_with_relationship(rid(0), false, Relationship::Provider);
        border.add_peer(rid(10), true);
        let acts = process_one(
            &mut border,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(9)])),
        );
        let to_ibgp: Vec<_> = sends(&acts)
            .into_iter()
            .filter(|(to, _)| *to == rid(10))
            .collect();
        assert_eq!(to_ibgp.len(), 1);
        assert_eq!(
            to_ibgp[0].1.local_pref,
            Some(2),
            "provider rank must ride iBGP"
        );
        // The interior router installs it at the carried rank.
        let mut interior = BgpNode::new(rid(10), asn(1), cfg, SmallRng::seed_from_u64(8));
        interior.add_peer(rid(1), true);
        interior.add_peer_with_relationship(rid(5), false, Relationship::Customer);
        process_one(&mut interior, SimTime::ZERO, 1, to_ibgp[0].1.clone());
        assert_eq!(interior.loc_rib().get(pfx(9)).unwrap().rank, 2);
    }

    #[test]
    fn policy_off_ignores_relationships() {
        // With PolicyMode::None, relationships are inert: shortest path wins
        // and everything is exported (modulo split horizon).
        let mut n = node(1, fast_cfg());
        n.add_peer_with_relationship(rid(0), false, Relationship::Provider);
        n.add_peer_with_relationship(rid(2), false, Relationship::Peer);
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(9)])),
        );
        let targets: Vec<RouterId> = sends(&acts).into_iter().map(|(to, _)| to).collect();
        assert_eq!(
            targets,
            vec![rid(2)],
            "policy off: export to the peer as usual"
        );
        assert_eq!(n.loc_rib().get(pfx(9)).unwrap().rank, 0);
    }

    #[test]
    fn peer_up_triggers_full_table_exchange() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        // Learn two routes and originate one.
        let acts = process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(5), AsPath::from_hops([asn(0)])),
        );
        fire_mrai(&mut n, SimTime::from_secs(1), &acts);
        let acts = n.originate(SimTime::from_secs(2), pfx(1));
        fire_mrai(&mut n, SimTime::from_secs(3), &acts);
        // A new session comes up: the whole Loc-RIB goes out, filtered by
        // split horizon (nothing here was learned from the new peer).
        let acts = n.on_peer_up(SimTime::from_secs(4), rid(2), false, None);
        let announced: Vec<Prefix> = sends(&acts)
            .into_iter()
            .filter(|(to, m)| *to == rid(2) && m.action.is_advertise())
            .map(|(_, m)| m.prefix)
            .collect();
        assert_eq!(
            announced,
            vec![pfx(1), pfx(5)],
            "full table exchange expected"
        );
    }

    #[test]
    fn peer_up_respects_split_horizon_and_policy() {
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .policy(PolicyMode::GaoRexford)
            .build();
        let mut n = node(1, cfg);
        n.add_peer_with_relationship(rid(0), false, Relationship::Provider);
        // Provider-learned route.
        process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(5), AsPath::from_hops([asn(0)])),
        );
        // A peer session comes up: the provider route must NOT be exported
        // to a peer (valley-free), so the exchange stays empty.
        let acts = n.on_peer_up(
            SimTime::from_secs(1),
            rid(2),
            false,
            Some(Relationship::Peer),
        );
        assert!(
            sends(&acts).is_empty(),
            "valley-free filter must apply at session up"
        );
        // A customer session comes up: the route goes out.
        let acts = n.on_peer_up(
            SimTime::from_secs(2),
            rid(3),
            false,
            Some(Relationship::Customer),
        );
        assert_eq!(sends(&acts).len(), 1);
    }

    #[test]
    fn damping_suppresses_flapping_route_and_releases() {
        use crate::damping::DampingConfig;
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .damping(DampingConfig::paper_scale())
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        // Announce, withdraw, announce, withdraw: flaps accumulate.
        let mut t = SimTime::ZERO;
        let mut reuse: Option<(RouterId, Prefix, SimDuration, u64)> = None;
        for i in 0..4 {
            let msg = if i % 2 == 0 {
                UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(0)]))
            } else {
                UpdateMsg::withdraw(pfx(9))
            };
            let acts = process_one(&mut n, t, 0, msg);
            for a in &acts {
                if let Action::StartReuse {
                    peer,
                    prefix,
                    delay,
                    gen,
                } = a
                {
                    reuse = Some((*peer, *prefix, *delay, *gen));
                }
            }
            fire_mrai(&mut n, t + SimDuration::from_millis(600), &acts);
            t += SimDuration::from_secs(1);
        }
        let (peer, prefix, delay, gen) = reuse.expect("route must get suppressed");
        assert_eq!(peer, rid(0));
        assert_eq!(prefix, pfx(9));
        assert_eq!(n.suppressed_count(), 1);
        // While suppressed, a fresh announce is parked, not installed.
        process_one(
            &mut n,
            t,
            0,
            UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(0), asn(7)])),
        );
        assert!(
            n.loc_rib().get(pfx(9)).is_none(),
            "suppressed route must not be used"
        );
        // Fire the reuse timer after the computed delay (plus slack).
        let at = t + delay + SimDuration::from_secs(60);
        let acts = n.on_reuse_expiry(at, peer, prefix, gen);
        assert_eq!(n.suppressed_count(), 0);
        let best = n
            .loc_rib()
            .get(pfx(9))
            .expect("parked route installed at release");
        assert_eq!(best.path.len(), 2, "latest parked state wins");
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::Send { to, .. } if *to == rid(2))),
            "release must propagate the route"
        );
    }

    #[test]
    fn damping_ignores_ibgp_sessions() {
        use crate::damping::DampingConfig;
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .damping(DampingConfig::paper_scale())
            .build();
        let mut n = BgpNode::new(rid(1), asn(1), cfg, SmallRng::seed_from_u64(3));
        n.add_peer(rid(10), true);
        let mut t = SimTime::ZERO;
        for i in 0..6 {
            let msg = if i % 2 == 0 {
                UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(0)]))
            } else {
                UpdateMsg::withdraw(pfx(9))
            };
            process_one(&mut n, t, 10, msg);
            t += SimDuration::from_secs(1);
        }
        assert_eq!(n.suppressed_count(), 0, "iBGP routes are never damped");
    }

    #[test]
    fn reuse_timer_from_before_session_teardown_stays_stale() {
        // Regression: suppression generations used to come from a counter
        // *inside* DampingState. `on_peer_down` drops the state, so a
        // suppression after the session returns restarted the counter at 1
        // — the same generation an in-flight reuse timer from before the
        // teardown carries. That stale timer then released the *new*
        // suppression early: a phantom re-advertisement. Generations now
        // come from a node-level counter that survives the teardown.
        use crate::damping::DampingConfig;
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .damping(DampingConfig::paper_scale())
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        let suppress = |n: &mut BgpNode, t0: SimTime| -> Option<(SimDuration, u64)> {
            let mut reuse = None;
            let mut t = t0;
            for i in 0..4 {
                let msg = if i % 2 == 0 {
                    UpdateMsg::advertise(pfx(9), AsPath::from_hops([asn(0)]))
                } else {
                    UpdateMsg::withdraw(pfx(9))
                };
                let acts = process_one(n, t, 0, msg);
                for a in &acts {
                    if let Action::StartReuse { delay, gen, .. } = a {
                        reuse = Some((*delay, *gen));
                    }
                }
                fire_mrai(n, t + SimDuration::from_millis(600), &acts);
                t += SimDuration::from_secs(1);
            }
            reuse
        };
        let (_, gen1) = suppress(&mut n, SimTime::ZERO).expect("first suppression");
        assert_eq!(n.suppressed_count(), 1);
        // Session teardown and re-establishment: the damping state for
        // peer 0 dies while the gen1 reuse timer is still in flight.
        n.on_peer_down(SimTime::from_secs(10), rid(0));
        assert_eq!(n.suppressed_count(), 0);
        n.on_peer_up(SimTime::from_secs(11), rid(0), false, None);
        let (_, gen2) = suppress(&mut n, SimTime::from_secs(12)).expect("second suppression");
        assert!(
            gen2 > gen1,
            "generations must be monotonic across teardown (gen1 {gen1}, gen2 {gen2})"
        );
        assert_eq!(n.suppressed_count(), 1);
        // The pre-teardown timer fires late enough that the penalty has
        // decayed — if its generation aliased, this would release the new
        // suppression and re-advertise a flapping route.
        let acts = n.on_reuse_expiry(SimTime::from_secs(500), rid(0), pfx(9), gen1);
        assert!(
            acts.is_empty(),
            "stale pre-teardown reuse timer must be a no-op, got {acts:?}"
        );
        assert_eq!(n.suppressed_count(), 1, "new suppression must survive");
    }

    #[test]
    fn stale_reuse_timer_is_ignored() {
        use crate::damping::DampingConfig;
        let cfg = NodeConfig::builder()
            .mrai_constant(SimDuration::from_millis(500))
            .jitter(false)
            .damping(DampingConfig::paper_scale())
            .build();
        let mut n = node(1, cfg);
        n.add_peer(rid(0), false);
        let acts = n.on_reuse_expiry(SimTime::from_secs(1), rid(0), pfx(9), 7);
        assert!(acts.is_empty(), "no state ⇒ no action");
    }

    #[test]
    fn stats_track_messages() {
        let mut n = node(1, fast_cfg());
        n.add_peer(rid(0), false);
        n.add_peer(rid(2), false);
        process_one(
            &mut n,
            SimTime::ZERO,
            0,
            UpdateMsg::advertise(pfx(0), AsPath::from_hops([asn(0)])),
        );
        let s = n.stats();
        assert_eq!(s.updates_received, 1);
        assert_eq!(s.updates_processed, 1);
        assert_eq!(s.announcements_sent, 1);
        assert_eq!(s.decision_runs, 1);
        assert_eq!(s.best_changes, 1);
        assert!(s.busy_time > SimDuration::ZERO);
        let mut n2 = n.clone();
        n2.reset_stats();
        assert_eq!(n2.stats().messages_sent(), 0);
    }
}
