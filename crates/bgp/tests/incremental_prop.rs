//! Property test: the incremental decision process is bit-identical to a
//! full rescan.
//!
//! `select_incremental` is the simulator's hot path — it resolves most
//! decisions by looking only at the peers whose routes changed since the
//! last decision, falling back to `select_best` when the installed best
//! was withdrawn or worsened. This test drives both processes through
//! randomized announce/withdraw/replace sequences (including batched
//! multi-peer change sets, mirroring how `BgpNode::on_proc_done` groups
//! work) and asserts they install exactly the same route at every step.

use bgpsim_bgp::decision::{select_best, select_incremental, Incremental};
use bgpsim_bgp::rib::{EngineRibIn, RouteEntry, Selected};
use bgpsim_bgp::{AsPath, Prefix};
use bgpsim_topology::{AsId, RouterId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn incremental_selection_matches_full_rescan(
        // Each op: ((peer, kind), (path_len, seed)).
        //   kind 0       — withdraw, then decide
        //   kind 1, 2    — announce/replace, then decide
        //   kind 3       — announce/replace, defer the decision so the
        //                  next one sees a multi-peer change set
        // `seed` scrambles the hop values, rank, and iBGP flag so ties
        // and strict improvements both occur.
        ops in prop::collection::vec(((0u32..6, 0u32..4), (0usize..5, 0u32..16)), 1..60)
    ) {
        let prefix = Prefix::new(0);
        let mut rib = EngineRibIn::new();
        // What the incremental process currently has installed.
        let mut installed: Option<Selected> = None;
        // Peers mutated since the last decision.
        let mut pending: Vec<RouterId> = Vec::new();
        for &((peer, kind), (len, seed)) in &ops {
            let peer = RouterId::new(peer);
            if kind == 0 {
                rib.remove(prefix, peer);
            } else {
                let entry = RouteEntry {
                    path: AsPath::from_hops((0..len as u32).map(|i| AsId::new(seed + i))),
                    ibgp: seed & 8 != 0,
                    rank: (seed % 3) as u8,
                };
                rib.insert(prefix, peer, entry);
            }
            if !pending.contains(&peer) {
                pending.push(peer);
            }
            if kind == 3 {
                continue;
            }
            let changed = std::mem::take(&mut pending);
            let resolved = match select_incremental(prefix, &rib, installed.as_ref(), &changed) {
                Incremental::Resolved(sel) => sel,
                Incremental::NeedsRescan => select_best(prefix, &rib),
            };
            let reference = select_best(prefix, &rib);
            prop_assert_eq!(
                &resolved,
                &reference,
                "incremental diverged after changed set {:?}",
                changed
            );
            installed = resolved;
        }
    }

    /// The fast path must also be exact when the caller over-lists peers
    /// in `changed` (the invariant allows it), including peers with no
    /// candidate at all.
    #[test]
    fn incremental_selection_tolerates_overlisted_peers(
        ops in prop::collection::vec(((0u32..4, 0u32..3), (0usize..4, 0u32..16)), 1..40)
    ) {
        let prefix = Prefix::new(0);
        let mut rib = EngineRibIn::new();
        let mut installed: Option<Selected> = None;
        // Every decision lists *all* peers as changed — maximal
        // over-listing, which must degrade to a correct full compare.
        let everyone: Vec<RouterId> = (0..8).map(RouterId::new).collect();
        for &((peer, kind), (len, seed)) in &ops {
            let peer = RouterId::new(peer);
            if kind == 0 {
                rib.remove(prefix, peer);
            } else {
                let entry = RouteEntry {
                    path: AsPath::from_hops((0..len as u32).map(|i| AsId::new(seed + i))),
                    ibgp: seed & 8 != 0,
                    rank: (seed % 3) as u8,
                };
                rib.insert(prefix, peer, entry);
            }
            let resolved = match select_incremental(prefix, &rib, installed.as_ref(), &everyone) {
                Incremental::Resolved(sel) => sel,
                Incremental::NeedsRescan => select_best(prefix, &rib),
            };
            let reference = select_best(prefix, &rib);
            prop_assert_eq!(&resolved, &reference);
            installed = resolved;
        }
    }
}
