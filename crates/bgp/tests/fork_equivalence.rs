//! Property test: a cloned `BgpNode` is indistinguishable from the
//! original.
//!
//! The warm-start sweep engine (`bgpsim::warm`) snapshots a converged
//! network by cloning every node — RIBs, MRAI timers, processing queue,
//! per-node RNG, and the memoized prepend cache (whose keys are the shared
//! `Arc<[AsId]>` path allocations, and therefore stay valid across the
//! clone). This test drives a node through a randomized update stream,
//! clones it mid-flight with timers pending and the processor busy, then
//! feeds original and clone the identical remaining stream and asserts
//! they emit byte-identical actions (including RNG-jittered MRAI delays
//! and randomized processing times) and end in identical state.

use bgpsim_bgp::rib::Selected;
use bgpsim_bgp::{Action, AsPath, BgpNode, NodeConfig, Prefix, UpdateMsg};
use bgpsim_des::{SimDuration, SimTime};
use bgpsim_topology::{AsId, RouterId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const NODE: u32 = 0;
const PEERS: u32 = 4;

fn build_node(seed: u64) -> BgpNode {
    let cfg = NodeConfig::builder()
        .mrai_constant(SimDuration::from_millis(500))
        .build();
    let mut node = BgpNode::new(
        RouterId::new(NODE),
        AsId::new(NODE),
        cfg,
        SmallRng::seed_from_u64(seed),
    );
    for peer in 1..=PEERS {
        node.add_peer(RouterId::new(peer), false);
    }
    node
}

/// One scripted stimulus: an update arrival or a pending-timer expiry.
#[derive(Clone, Debug)]
enum Op {
    /// Announce (path drawn from `seed`) or withdraw (`withdraw` set)
    /// `prefix` from `peer`.
    Update {
        peer: u32,
        prefix: u32,
        withdraw: bool,
        seed: u32,
    },
    /// Fire the oldest captured `StartMrai` action, if any.
    FireMrai,
    /// Complete the processor's busy period, if one is running.
    ProcDone,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1..=PEERS, 0u32..3, any::<bool>(), 0u32..16).prop_map(
            |(peer, prefix, withdraw, seed)| Op::Update { peer, prefix, withdraw, seed }
        ),
        1 => Just(Op::FireMrai),
        2 => Just(Op::ProcDone),
    ]
}

/// The driver's view of one node: the node plus its captured timers and
/// busy state, advanced in lock step on both sides of the fork.
struct Driver {
    node: BgpNode,
    pending_mrai: Vec<Action>,
    busy: bool,
}

impl Driver {
    fn new(node: BgpNode) -> Driver {
        Driver {
            node,
            pending_mrai: Vec::new(),
            busy: false,
        }
    }

    fn absorb(&mut self, actions: &[Action]) {
        for a in actions {
            match a {
                Action::StartMrai { .. } => self.pending_mrai.push(a.clone()),
                Action::StartProcessing { .. } => self.busy = true,
                _ => {}
            }
        }
    }

    fn step(&mut self, now: SimTime, op: &Op) -> Vec<Action> {
        let actions = match op {
            Op::Update {
                peer,
                prefix,
                withdraw,
                seed,
            } => {
                let prefix = Prefix::new(*prefix);
                let msg = if *withdraw {
                    UpdateMsg::withdraw(prefix)
                } else {
                    UpdateMsg::advertise(
                        prefix,
                        AsPath::from_hops((0..1 + seed % 4).map(|i| AsId::new(100 + seed + i))),
                    )
                };
                self.node.on_update(now, RouterId::new(*peer), msg)
            }
            Op::FireMrai => {
                if self.pending_mrai.is_empty() {
                    return Vec::new();
                }
                let Action::StartMrai {
                    peer, prefix, gen, ..
                } = self.pending_mrai.remove(0)
                else {
                    unreachable!("pending_mrai holds StartMrai actions only");
                };
                self.node.on_mrai_expiry(now, peer, prefix, gen)
            }
            Op::ProcDone => {
                if !self.busy {
                    return Vec::new();
                }
                self.busy = false;
                self.node.on_proc_done(now)
            }
        };
        self.absorb(&actions);
        actions
    }

    fn loc_rib_entries(&self) -> Vec<(Prefix, Selected)> {
        self.node
            .loc_rib()
            .iter()
            .map(|(p, s)| (p, s.clone()))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn cloned_node_replays_identically(
        prelude in prop::collection::vec(op_strategy(), 1..40),
        tail in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        let mut original = Driver::new(build_node(seed));

        // Warm the node up: populate RIBs, leave timers pending and the
        // processor mid-batch, and exercise the prepend cache.
        let mut now = SimTime::ZERO;
        for op in &prelude {
            now += SimDuration::from_millis(7);
            original.step(now, op);
        }

        // Fork mid-flight.
        let mut fork = Driver {
            node: original.node.clone(),
            pending_mrai: original.pending_mrai.clone(),
            busy: original.busy,
        };

        // Identical stimulus ⇒ byte-identical actions, step by step: the
        // clone must have captured RIBs, timer generations, queue contents
        // *and* the RNG position (jittered MRAI delays and randomized
        // processing durations diverge otherwise).
        for op in &tail {
            now += SimDuration::from_millis(7);
            let a = original.step(now, op);
            let b = fork.step(now, op);
            prop_assert_eq!(a, b, "diverged on {:?}", op);
        }

        prop_assert_eq!(original.node.rib_in(), fork.node.rib_in());
        prop_assert_eq!(original.loc_rib_entries(), fork.loc_rib_entries());
        prop_assert_eq!(original.node.stats(), fork.node.stats());
        prop_assert_eq!(original.node.queue_len(), fork.node.queue_len());
    }
}
