//! Quickstart: build the paper's default network, fail 10% of it, and see
//! how long BGP takes to re-converge.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_des::RngStreams;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;

fn main() {
    // 1. A 120-node topology with the paper's "70-30" degree distribution:
    //    70% of ASes have degree 1–3, 30% have degree 8 (average 3.8).
    let streams = RngStreams::new(42);
    let mut topo_rng = streams.stream("topology", 0);
    let topo = skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut topo_rng)
        .expect("the 70-30 sequence is realizable");
    println!(
        "topology: {} ASes, {} links, average degree {:.2}",
        topo.num_ases(),
        topo.num_edges(),
        topo.avg_degree()
    );

    // 2. Wire a network with a constant 0.5 s MRAI (FIFO processing, the
    //    deployed default apart from the shorter timer).
    let cfg = SimConfig::from_scheme(&Scheme::constant_mrai(0.5), 42);
    let mut net = Network::new(topo, cfg);

    // 3. Originate all prefixes and converge.
    let initial = net.run_initial_convergence();
    println!(
        "initial convergence: {:.1} s of simulated time",
        initial.as_secs_f64()
    );

    // 4. A contiguous failure at the grid centre takes out 10% of routers.
    let failed = net.inject_failure(&FailureSpec::CenterFraction(0.10));
    println!("failed {} routers in the centre of the grid", failed.len());

    // 5. Re-converge and report.
    let stats = net.run_to_quiescence();
    println!(
        "re-convergence: {:.1} s, {} update messages ({} announcements, {} withdrawals)",
        stats.convergence_delay.as_secs_f64(),
        stats.messages,
        stats.announcements,
        stats.withdrawals
    );
    println!(
        "largest router input-queue backlog: {} updates",
        stats.peak_queue
    );

    // 6. The Loc-RIBs now match ground-truth reachability (this panics on
    //    any inconsistency).
    net.assert_routing_consistent();
    println!("routing state verified consistent with surviving topology");
}
