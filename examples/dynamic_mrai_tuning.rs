//! Tuning the dynamic MRAI thresholds (paper §4.3, Figs 8–9).
//!
//! The dynamic scheme steps a node's MRAI between {0.5, 1.25, 2.25} s when
//! its *unfinished work* (input-queue length × mean processing delay)
//! crosses `upTh`/`downTh`. This example sweeps both thresholds at two
//! failure sizes and shows the paper's finding: a broad range of
//! thresholds works, with low `upTh` behaving like a high constant MRAI
//! (bad for small failures) and high `downTh` hurting large failures.
//!
//! ```sh
//! cargo run --release --example dynamic_mrai_tuning
//! ```

use bgpsim::experiment::{run_all_parallel, Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

fn main() {
    let topology = TopologySpec::seventy_thirty(120);
    let fractions = [0.025, 0.15];

    println!("unfinished-work thresholds vs convergence delay (70-30, 120 nodes)");
    println!(
        "{:<24} {:>16} {:>16}",
        "thresholds", "2.5% failure (s)", "15% failure (s)"
    );
    println!("{}", "-".repeat(58));

    let mut settings: Vec<(String, Scheme)> = Vec::new();
    for up in [0.05, 0.25, 0.65, 1.25] {
        settings.push((
            format!("upTh={up:>4}, downTh=0.05"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], up, 0.05),
        ));
    }
    for down in [0.0, 0.2, 0.5] {
        settings.push((
            format!("upTh=0.65, downTh={down:>4}"),
            Scheme::dynamic(&[0.5, 1.25, 2.25], 0.65, down),
        ));
    }

    let points: Vec<Experiment> = settings
        .iter()
        .flat_map(|(_, scheme)| {
            fractions.iter().map(|&f| Experiment {
                topology: topology.clone(),
                scheme: scheme.clone(),
                failure: FailureSpec::CenterFraction(f),
                trials: 3,
                base_seed: 65,
            })
        })
        .collect();
    let aggs = run_all_parallel(&points, None);

    for (i, (label, _)) in settings.iter().enumerate() {
        println!(
            "{:<24} {:>16.1} {:>16.1}",
            label,
            aggs[i * fractions.len()].mean_delay_secs(),
            aggs[i * fractions.len() + 1].mean_delay_secs()
        );
    }

    println!();
    println!("The paper's pick (upTh=0.65, downTh=0.05) sits in the plateau:");
    println!("small enough to react to genuine overload, large enough not to");
    println!("penalize small failures by ratcheting every node's MRAI up.");
}
