//! A geographically concentrated disaster on a realistic multi-router
//! topology — the scenario motivating the paper's introduction (natural or
//! man-made disasters taking out a contiguous region of infrastructure).
//!
//! Compares how four configurations ride out the same 5% regional failure:
//! the deployed default (MRAI 30 s), a small constant MRAI, the paper's
//! dynamic MRAI, and the paper's batching scheme.
//!
//! ```sh
//! cargo run --release --example regional_disaster
//! ```

use bgpsim::experiment::{Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::multias::MultiAsConfig;
use bgpsim_topology::region::FailureSpec;

fn main() {
    // 60 ASes with 1–100 routers each (heavy-tailed), geographic extent
    // proportional to AS size, highest inter-AS degrees at the largest
    // ASes — the paper's "realistic" construction (§3.1).
    let topology = TopologySpec::MultiAs(MultiAsConfig::realistic(60));

    let schemes = vec![
        Scheme::constant_mrai(30.0).named("deployed default (30 s)"),
        Scheme::constant_mrai(0.5).named("constant 0.5 s"),
        Scheme::dynamic(&[0.5, 1.25, 3.5], 0.65, 0.05).named("dynamic MRAI"),
        Scheme::batching(0.5).named("batched processing"),
    ];

    println!("5% regional failure on a realistic 60-AS multi-router topology");
    println!(
        "{:<26} {:>12} {:>12} {:>14}",
        "scheme", "delay (s)", "messages", "stale deleted"
    );
    println!("{}", "-".repeat(68));
    for scheme in schemes {
        let exp = Experiment {
            topology: topology.clone(),
            scheme: scheme.clone(),
            failure: FailureSpec::CenterFraction(0.05),
            trials: 3,
            base_seed: 1906,
        };
        let agg = exp.run();
        println!(
            "{:<26} {:>12.1} {:>12.0} {:>14.0}",
            scheme.name,
            agg.mean_delay_secs(),
            agg.mean_messages(),
            agg.mean_stale_deleted()
        );
    }
    println!();
    println!("Reading the table: the deployed 30 s MRAI is slow because every");
    println!("path-hunting round waits half a minute; a small constant MRAI is");
    println!("fast until the update flood overloads routers; the paper's two");
    println!("schemes keep the delay low by taming the processing backlog.");
}
