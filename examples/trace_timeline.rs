//! Trace a re-convergence and reconstruct its timeline: per-destination
//! settle times, transient invalid-route episodes (the §5 batching
//! claim), per-node unfinished-work and dynamic-MRAI-level series — all
//! from the structured trace stream, exported as CSV.
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! ```
//!
//! Environment knobs:
//!
//! * `BGPSIM_NODES` — topology size (default 60).
//! * `BGPSIM_SEED` — simulation seed (default 7).
//! * `BGPSIM_OUT` — CSV output directory (default `target/trace_timeline`).
//! * `BGPSIM_TRACE_OUT` — when set, additionally writes the raw trace as
//!   JSONL to this path. Combined with `BGPSIM_SHARDS`, this is the CI
//!   determinism check: the stream is byte-identical for any shard count.

use std::path::PathBuf;

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim::trace::{to_jsonl, Timeline, TraceSink};
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::io::Result<()> {
    let nodes: usize = env_or("BGPSIM_NODES", 60);
    let seed: u64 = env_or("BGPSIM_SEED", 7);
    let out_dir = PathBuf::from(
        std::env::var("BGPSIM_OUT").unwrap_or_else(|_| "target/trace_timeline".into()),
    );

    // Batching + dynamic MRAI exercises every event family: stale
    // deletions from the batching queue, level transitions from the
    // dynamic-MRAI controller.
    let scheme = Scheme::batching_plus_dynamic();
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng)
        .expect("70-30 topology is realizable");
    let cfg = SimConfig::from_scheme(&scheme, seed);
    let mean_processing = (cfg.proc_min + cfg.proc_max).mul_f64(0.5);
    let mut net = Network::new(topo, cfg);

    println!(
        "== trace_timeline: {} routers, scheme '{}', {} shard(s) ==",
        nodes,
        scheme.name,
        net.shard_count()
    );
    net.run_initial_convergence();
    net.inject_failure(&FailureSpec::CenterFraction(0.10));
    let t0 = net.failure_time().expect("failure injected");

    // Trace only the re-convergence. A memory sink keeps the events for
    // the timeline pass; `to_jsonl` re-serializes them into exactly the
    // byte stream a `TraceSink::Jsonl` would have written.
    net.set_trace_sink(TraceSink::memory(1 << 22));
    let stats = net.run_to_quiescence();
    let events = net.take_trace_events();

    if let Ok(path) = std::env::var("BGPSIM_TRACE_OUT") {
        std::fs::write(&path, to_jsonl(&events))?;
        println!("raw trace      -> {path} ({} events)", events.len());
    }

    let tl = Timeline::from_events(&events);
    println!(
        "re-convergence {:.2} s, {} messages, {} trace events",
        stats.convergence_delay.as_secs_f64(),
        stats.messages,
        events.len()
    );
    println!(
        "traffic        {} sent / {} received / {} processed / {} stale-deleted",
        tl.sent, tl.received, tl.processed, tl.stale_deleted
    );
    println!(
        "best paths     {} changes, {} transient invalid routes across {} destinations",
        tl.best_changes,
        tl.transient_routes(),
        tl.transient_by_prefix.len()
    );
    println!(
        "MRAI           {} timer starts, {} expiries, {} level transitions on {} routers",
        tl.mrai_starts,
        tl.mrai_expiries,
        tl.level_series.values().map(Vec::len).sum::<usize>(),
        tl.level_series.len()
    );
    println!(
        "settle         last destination settles {:.2} s after the failure",
        tl.last_settle_since(t0).as_secs_f64()
    );

    // The slowest destinations, from the per-destination settle map.
    let mut settles: Vec<_> = tl.settle_since(t0).into_iter().collect();
    settles.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    println!("\nslowest destinations:");
    println!("{:>8} {:>12} {:>10}", "prefix", "settle (s)", "transient");
    for (p, d) in settles.iter().take(5) {
        println!(
            "{:>8} {:>12.2} {:>10}",
            p.index(),
            d.as_secs_f64(),
            tl.transient_by_prefix.get(p).copied().unwrap_or(0)
        );
    }

    std::fs::create_dir_all(&out_dir)?;
    let write = |name: &str, data: String| -> std::io::Result<()> {
        let path = out_dir.join(name);
        std::fs::write(&path, data)?;
        println!("{:<14} -> {}", name, path.display());
        Ok(())
    };
    println!();
    write("settle.csv", tl.settle_csv(t0))?;
    write(
        "unfinished_work.csv",
        tl.unfinished_work_csv(mean_processing),
    )?;
    write("mrai_levels.csv", tl.level_csv())?;
    Ok(())
}
