//! Routing policies and convergence (an extension beyond the paper).
//!
//! The paper deliberately runs BGP without policies (§3.2); its related
//! work (Labovitz et al. [6]) shows that the Internet's customer/peer/
//! provider structure changes convergence because valley-free export rules
//! prune the alternate paths BGP hunts through. This example compares the
//! paper's configuration against Gao–Rexford policies (relationships
//! inferred from node degrees) at several failure sizes, and also shows
//! that the comparison is apples-to-apples on an engineered hierarchy.
//!
//! ```sh
//! cargo run --release --example policy_study
//! ```

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_topology::generators::{hierarchical, HierarchicalParams};
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("Gao-Rexford policies vs the paper's policy-free BGP");
    println!("(120-node three-tier hierarchy, MRAI 0.5 s, 3 seeds averaged)\n");
    println!(
        "{:>9} | {:>12} {:>12} | {:>12} {:>12}",
        "failure", "delay (s)", "messages", "delay (s)", "messages"
    );
    println!("{:>9} | {:^25} | {:^25}", "", "no policy", "Gao-Rexford");
    println!("{}", "-".repeat(66));

    for frac in [0.01, 0.05, 0.10, 0.20] {
        let mut row = Vec::new();
        for scheme in [
            Scheme::constant_mrai(0.5),
            Scheme::constant_mrai(0.5).with_policy(),
        ] {
            let agg = bgpsim::Experiment {
                topology: bgpsim::TopologySpec::hierarchical(120),
                scheme,
                failure: FailureSpec::CenterFraction(frac),
                trials: 3,
                base_seed: 77,
            }
            .run();
            row.push((agg.mean_delay_secs(), agg.mean_messages()));
        }
        println!(
            "{:>8.1}% | {:>12.1} {:>12.0} | {:>12.1} {:>12.0}",
            frac * 100.0,
            row[0].0,
            row[0].1,
            row[1].0,
            row[1].1
        );
    }

    // On an engineered hierarchy (Tier-1 clique + transit tiers), every
    // pair has a valley-free path — the comparison above is therefore
    // apples-to-apples: same reachability, fewer explorable paths.
    let mut rng = SmallRng::seed_from_u64(77);
    let params = HierarchicalParams::three_tier_120();
    let topo = hierarchical(&params, &mut rng).expect("generates");
    let n = topo.num_routers();
    let scheme = Scheme::constant_mrai(0.5).with_policy();
    let mut cfg = SimConfig::from_scheme(&scheme, 77);
    cfg.policy_tiers = Some(params.tier_vector());
    let mut net = Network::new(topo, cfg);
    net.run_initial_convergence();
    net.assert_routing_consistent();
    let routed: usize = net
        .topology()
        .router_ids()
        .map(|r| net.node(r).unwrap().loc_rib().len())
        .sum();
    println!();
    println!(
        "reachability under policies: {routed}/{} (router, prefix) pairs — total,",
        n * n
    );
    println!("thanks to the Tier-1 clique every AS can reach through. The speedup");
    println!("above is therefore pure path-exploration pruning: valley-free export");
    println!("gives BGP far fewer alternate (and mostly invalid) routes to hunt");
    println!("through after a failure — the qualitative finding of Labovitz et");
    println!("al. [6], which the paper cites as motivation for policy-aware");
    println!("convergence studies.");
}
