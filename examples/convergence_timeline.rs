//! Watch a convergence storm unfold: sample the network every 2 s of
//! simulated time during re-convergence from a 10% failure and print the
//! backlog/busy-router/message timeline, for a FIFO router at MRAI 0.5 s
//! vs the paper's batching scheme.
//!
//! ```sh
//! cargo run --release --example convergence_timeline
//! ```

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim_des::SimDuration;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run(scheme: Scheme) {
    let mut rng = SmallRng::seed_from_u64(8);
    let topo = skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut rng)
        .expect("70-30 at 120 nodes is realizable");
    let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, 8));
    net.run_initial_convergence();
    net.enable_sampling(SimDuration::from_secs(2));
    net.inject_failure(&FailureSpec::CenterFraction(0.10));
    let failure_time = net.now() + SimDuration::from_secs(1);
    let stats = net.run_to_quiescence();

    println!("\n=== {} ===", scheme.name);
    println!(
        "re-convergence {:.1} s, {} messages",
        stats.convergence_delay.as_secs_f64(),
        stats.messages
    );
    let post_failure: Vec<_> = net
        .samples()
        .iter()
        .filter(|s| s.time >= failure_time)
        .copied()
        .collect();
    println!("backlog   {}", bgpsim::report::sparkline(&post_failure));
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "t (s)", "queued updates", "busy routers", "messages"
    );
    let mut peak_printed = 0usize;
    for s in net.samples() {
        if s.time < failure_time {
            continue;
        }
        // Print every sample while the storm is active, then stop once the
        // network has been quiet for a while (keeps the table short).
        if s.queued_updates == 0 && s.busy_routers == 0 && peak_printed > 3 {
            break;
        }
        peak_printed += 1;
        println!(
            "{:>8.0} {:>14} {:>12} {:>12}",
            (s.time - failure_time).as_secs_f64(),
            s.queued_updates,
            s.busy_routers,
            s.messages_so_far
        );
    }
}

fn main() {
    println!("10% central failure on the paper's 120-node 70-30 network.");
    println!("Watch how the input-queue backlog (the paper's 'unfinished work')");
    println!("builds and drains under each configuration:");
    run(Scheme::constant_mrai(0.5));
    run(Scheme::batching(0.5));
    run(Scheme::dynamic_default().named("dynamic MRAI"));
}
