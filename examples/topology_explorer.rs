//! Explore the topology generators: build every family the workspace (and
//! BRITE, which the paper modified) offers, and print the graph statistics
//! that drive the convergence results — degree extremes, path lengths,
//! clustering.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use bgpsim_topology::degree::{internet_like, DegreeSpec, SkewedSpec};
use bgpsim_topology::generators::{
    barabasi_albert, glp, skewed_topology, topology_from_spec, waxman, GlpParams, WaxmanParams,
};
use bgpsim_topology::metrics::measure;
use bgpsim_topology::multias::{generate_multi_as, MultiAsConfig};
use bgpsim_topology::placement::{place, DensityModel};
use bgpsim_topology::Topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn describe(name: &str, topo: &Topology) {
    let m = measure(topo);
    println!(
        "{name:<22} {:>5} {:>5} {:>6} {:>6.2} {:>4}-{:<4} {:>7.2} {:>5} {:>7.3}",
        m.routers,
        m.ases,
        m.edges,
        m.avg_degree,
        m.min_degree,
        m.max_degree,
        m.avg_path_length,
        m.diameter,
        m.clustering
    );
}

fn main() {
    println!("All topology families at n = 120 (seed 7):\n");
    println!(
        "{:<22} {:>5} {:>5} {:>6} {:>6} {:>9} {:>7} {:>5} {:>7}",
        "family", "rtrs", "ASes", "edges", "deg", "min-max", "path", "diam", "clust"
    );
    println!("{}", "-".repeat(95));

    let mut rng = SmallRng::seed_from_u64(7);
    for (name, spec) in [
        ("skewed 70-30", SkewedSpec::seventy_thirty()),
        ("skewed 50-50", SkewedSpec::fifty_fifty()),
        ("skewed 85-15", SkewedSpec::eighty_five_fifteen()),
        ("skewed 50-50 dense", SkewedSpec::fifty_fifty_dense()),
    ] {
        let topo = skewed_topology(120, &spec, &mut rng).expect("realizable");
        describe(name, &topo);
    }

    let spec = internet_like(40, 3.4);
    let topo = topology_from_spec(120, &spec, &mut rng).expect("realizable");
    describe("internet-like (≤40)", &topo);

    let pts = place(120, DensityModel::Uniform, &mut rng);
    let topo = waxman(&pts, WaxmanParams::default(), &mut rng).expect("waxman");
    describe("Waxman (m=2)", &topo);

    let pts = place(120, DensityModel::Uniform, &mut rng);
    let topo = barabasi_albert(&pts, 2, &mut rng).expect("BA");
    describe("Barabasi-Albert (m=2)", &topo);

    let pts = place(120, DensityModel::Uniform, &mut rng);
    let topo = glp(
        &pts,
        GlpParams {
            m: 2,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("GLP");
    describe("GLP (m=2)", &topo);

    let topo = generate_multi_as(&MultiAsConfig::realistic(120), &mut rng).expect("multi-AS");
    describe("multi-router realistic", &topo);

    let topo = topology_from_spec(120, &DegreeSpec::Uniform { min: 3, max: 5 }, &mut rng)
        .expect("uniform");
    describe("uniform degree 3-5", &topo);

    println!();
    println!("Reading the table: the skewed families share the 3.8 average but");
    println!("concentrate it differently (max degree 8 / 6 / 14); the paper's");
    println!("Fig 4 shows the optimal MRAI follows that max-degree column.");
}
