//! The batching scheme under the microscope (paper §4.4, Figs 10–12).
//!
//! Compares three update-processing disciplines across failure sizes at a
//! fixed small MRAI (0.5 s):
//!
//! * **FIFO** — default BGP, one message at a time;
//! * **TCP-batch** — what routers do today: drain one buffer per peer and
//!   process it as a batch (stale updates collapse only within a buffer);
//! * **Batched** — the paper's scheme: a logical queue per destination,
//!   all updates for a destination processed together, stale ones deleted.
//!
//! ```sh
//! cargo run --release --example batching_study
//! ```

use bgpsim::experiment::{run_all_parallel, Experiment, TopologySpec};
use bgpsim::scheme::Scheme;
use bgpsim_topology::region::FailureSpec;

fn main() {
    let topology = TopologySpec::seventy_thirty(120);
    let fractions = [0.01, 0.05, 0.10, 0.20];
    let schemes = [
        Scheme::constant_mrai(0.5).named("FIFO"),
        Scheme::tcp_batch(0.5, 32).named("TCP-batch(32)"),
        Scheme::batching(0.5).named("batched"),
    ];

    let points: Vec<Experiment> = schemes
        .iter()
        .flat_map(|scheme| {
            fractions.iter().map(|&f| Experiment {
                topology: topology.clone(),
                scheme: scheme.clone(),
                failure: FailureSpec::CenterFraction(f),
                trials: 3,
                base_seed: 44,
            })
        })
        .collect();
    let aggs = run_all_parallel(&points, None);

    println!("update-processing disciplines at MRAI = 0.5 s (70-30, 120 nodes)");
    for (si, scheme) in schemes.iter().enumerate() {
        println!("\n{}:", scheme.name);
        println!(
            "  {:>9} {:>12} {:>12} {:>16} {:>12}",
            "failure", "delay (s)", "messages", "stale deleted", "peak queue"
        );
        for (fi, &f) in fractions.iter().enumerate() {
            let agg = &aggs[si * fractions.len() + fi];
            println!(
                "  {:>8.1}% {:>12.1} {:>12.0} {:>16.0} {:>12}",
                f * 100.0,
                agg.mean_delay_secs(),
                agg.mean_messages(),
                agg.mean_stale_deleted(),
                agg.max_peak_queue()
            );
        }
    }

    println!();
    println!("The paper's observation reproduces: TCP-batching helps a little");
    println!("(same-destination updates rarely share a buffer when many");
    println!("destinations are in flux), while per-destination batching deletes");
    println!("the stale work outright and keeps overloaded routers from");
    println!("advertising soon-to-be-invalid routes.");
}
