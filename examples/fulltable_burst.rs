//! Full-table burst withdrawal, end to end: a 10^5-prefix routing table
//! allocated through the longest-prefix-match trie, a regional storm that
//! withdraws every prefix block originated near the grid centre in one
//! event burst, and the traced re-convergence exported as JSONL plus
//! figure CSVs (per-destination settle times, run summary, withdrawn
//! set).
//!
//! ```sh
//! cargo run --release --example fulltable_burst
//! ```
//!
//! Environment knobs:
//!
//! * `BGPSIM_NODES` — topology size (default 40).
//! * `BGPSIM_TABLE` — total prefixes in the full table (default 100000).
//! * `BGPSIM_FRACTION` — central fraction whose origins withdraw
//!   (default 0.05).
//! * `BGPSIM_SEED` — simulation seed (default 7).
//! * `BGPSIM_OUT` — output directory (default `target/fulltable_burst`).
//! * `BGPSIM_TRACE_OUT` — override path for the raw trace JSONL
//!   (default `<out>/trace.jsonl`).
//!
//! Combined with `BGPSIM_SHARDS` / `BGPSIM_COMMIT_STREAMS`, this is the
//! full-table determinism check: every output file is byte-identical for
//! any shard or commit-stream count. The trace streams to disk while the
//! storm runs (a 10^5-prefix burst emits far more events than a memory
//! ring should hold) and is re-read afterwards for the timeline pass.

use std::path::PathBuf;

use bgpsim::network::{Network, SimConfig};
use bgpsim::scheme::Scheme;
use bgpsim::trace::{Timeline, TraceEvent, TraceSink};
use bgpsim::FullTableSpec;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use bgpsim_topology::region::FailureSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::io::Result<()> {
    let nodes: usize = env_or("BGPSIM_NODES", 40);
    let table: u32 = env_or("BGPSIM_TABLE", 100_000);
    let fraction: f64 = env_or("BGPSIM_FRACTION", 0.05);
    let seed: u64 = env_or("BGPSIM_SEED", 7);
    let out_dir = PathBuf::from(
        std::env::var("BGPSIM_OUT").unwrap_or_else(|_| "target/fulltable_burst".into()),
    );
    std::fs::create_dir_all(&out_dir)?;
    let trace_path = std::env::var("BGPSIM_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| out_dir.join("trace.jsonl"));

    let scheme = Scheme::batching(0.5).with_full_table(FullTableSpec::internet_like(table));
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = skewed_topology(nodes, &SkewedSpec::seventy_thirty(), &mut rng)
        .expect("70-30 topology is realizable");
    let mut net = Network::new(topo, SimConfig::from_scheme(&scheme, seed));

    println!(
        "== fulltable_burst: {} routers × {} prefixes, scheme '{}', {} shard(s), {} stream(s) ==",
        nodes,
        table,
        scheme.name,
        net.shard_count(),
        net.commit_stream_count()
    );
    net.run_initial_convergence();
    println!(
        "initial table  {} routes held across the network",
        net.memory_footprint().routes
    );

    let mut withdrawn = net.inject_burst_withdrawal(&FailureSpec::CenterFraction(fraction));
    withdrawn.sort_unstable();
    let t0 = net.failure_time().expect("burst injected");
    println!(
        "burst          {} prefixes withdrawn in one storm at t={:.2} s",
        withdrawn.len(),
        t0.as_secs_f64()
    );

    // Trace only the re-convergence, streaming straight to disk: a
    // 10^5-prefix storm produces more events than a memory ring should
    // buffer. The JSONL file is itself the determinism artefact.
    net.set_trace_sink(TraceSink::jsonl_file(&trace_path)?);
    let stats = net.run_to_quiescence();
    net.trace_sink_mut().flush()?;
    net.set_trace_sink(TraceSink::Off);
    net.assert_routing_consistent();

    // Re-read the stream for the timeline pass (the memory-sink path the
    // smaller examples take would have dropped the oldest events here).
    let raw = std::fs::read_to_string(&trace_path)?;
    let events: Vec<TraceEvent> = raw
        .lines()
        .map(|l| serde_json::from_str(l).expect("trace line parses"))
        .collect();
    drop(raw);
    println!(
        "re-convergence {:.2} s sim-time, {} messages, {} trace events",
        stats.convergence_delay.as_secs_f64(),
        stats.messages,
        events.len()
    );
    println!(
        "raw trace      -> {} ({} events)",
        trace_path.display(),
        events.len()
    );

    let tl = Timeline::from_events(&events);
    println!(
        "best paths     {} changes, {} transient invalid routes across {} destinations",
        tl.best_changes,
        tl.transient_routes(),
        tl.transient_by_prefix.len()
    );
    println!(
        "settle         last destination settles {:.2} s after the storm",
        tl.last_settle_since(t0).as_secs_f64()
    );

    let write = |name: &str, data: String| -> std::io::Result<()> {
        let path = out_dir.join(name);
        std::fs::write(&path, data)?;
        println!("{:<14} -> {}", name, path.display());
        Ok(())
    };

    // Figure CSVs. `settle.csv` is the per-destination settle map;
    // `withdrawn.csv` pins the storm's exact prefix set (slot index and
    // trie-assigned address); `summary.csv` is the delay-vs-table-size
    // data point this run contributes to EXPERIMENTS.md.
    write("settle.csv", tl.settle_csv(t0))?;
    let mut wcsv = String::from("prefix,ip\n");
    for p in &withdrawn {
        let ip = net.ip_of_prefix(*p).expect("withdrawn prefix is allocated");
        wcsv.push_str(&format!("{},{ip}\n", p.index()));
    }
    write("withdrawn.csv", wcsv)?;
    write(
        "summary.csv",
        format!(
            "nodes,table_size,withdrawn,messages,events,convergence_delay_secs,transient_routes\n\
             {},{},{},{},{},{:.6},{}\n",
            nodes,
            table,
            withdrawn.len(),
            stats.messages,
            stats.events,
            stats.convergence_delay.as_secs_f64(),
            tl.transient_routes()
        ),
    )?;
    Ok(())
}
