//! A flapping region: the same central 10% of the network fails and
//! recovers three times in a row. Scripted with [`bgpsim::scenario`];
//! each transition is measured separately, exposing the classic
//! Tdown/Tup asymmetry (Labovitz et al.): withdrawing routes is slow
//! (path hunting), announcing them is fast (monotone new information).
//!
//! ```sh
//! cargo run --release --example flapping_region
//! ```

use bgpsim::network::{Network, SimConfig};
use bgpsim::scenario::Scenario;
use bgpsim::scheme::Scheme;
use bgpsim_topology::degree::SkewedSpec;
use bgpsim_topology::generators::skewed_topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(5);
    let topo = skewed_topology(120, &SkewedSpec::seventy_thirty(), &mut rng)
        .expect("70-30 at 120 nodes is realizable");

    for scheme in [
        Scheme::constant_mrai(1.25),
        Scheme::batching(0.5).named("batching (MRAI=0.5)"),
    ] {
        let mut net = Network::new(topo.clone(), SimConfig::from_scheme(&scheme, 5));
        let stats = Scenario::flapping(0.10, 3).run(&mut net);
        net.assert_routing_consistent();

        println!("\n=== {} ===", scheme.name);
        println!(
            "{:>6} {:>12} {:>12} {:>12}",
            "step", "event", "delay (s)", "messages"
        );
        for (i, s) in stats.iter().enumerate() {
            let event = if i % 2 == 0 { "fail 10%" } else { "recover" };
            println!(
                "{:>6} {:>12} {:>12.1} {:>12}",
                i + 1,
                event,
                s.convergence_delay.as_secs_f64(),
                s.messages
            );
        }
    }
    println!();
    println!("Recovery (Tup) consistently beats failure (Tdown): announcements");
    println!("replace routes monotonically, while withdrawals trigger the path");
    println!("hunting the paper's schemes are designed to tame.");
}
